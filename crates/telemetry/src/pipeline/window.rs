//! Keyed tumbling/sliding windows over the telemetry stream.
//!
//! Windows are defined on a generic `u64` tick axis ([`TimeAxis`]): either
//! simulated nanoseconds ([`TimeAxis::EventTime`]) or the logical BSP step
//! counter ([`TimeAxis::Step`]). The step axis exists because training
//! iterations have *variable* wall duration — a fixed-width time window can
//! never align to step boundaries, but the straggler detectors are defined
//! per step.
//!
//! Panes are half-open `[start, start + width)` intervals whose starts lie
//! on multiples of `slide` (`slide == width` makes the window tumbling). A
//! pane **closes** — is emitted and its state freed — once the watermark
//! (max tick seen minus `allowed_lateness`) reaches its end; events arriving
//! behind the watermark with no open pane left are dropped and counted, so
//! state stays bounded no matter how long the stream runs.

use std::collections::BTreeMap;

use c4_simcore::SimDuration;

use super::combine::{Aggregate, Combiner};
use super::TelemetryEvent;

/// Which tick axis a window is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeAxis {
    /// Simulated time in nanoseconds ([`TelemetryEvent::time`]).
    EventTime,
    /// The logical step counter: `step` for rank/load events, `seq` for
    /// collectives. Events without a step (comm/conn) carry no tick on this
    /// axis and pass windows untouched.
    Step,
}

impl TimeAxis {
    /// The event's position on this axis, if it has one.
    pub fn tick(self, event: &TelemetryEvent) -> Option<u64> {
        match self {
            TimeAxis::EventTime => Some(event.time().as_nanos()),
            TimeAxis::Step => match event {
                TelemetryEvent::Rank(r) => Some(r.step),
                TelemetryEvent::Load(l) => Some(l.step),
                TelemetryEvent::Coll(c) => Some(c.seq),
                TelemetryEvent::Comm(_) | TelemetryEvent::Conn(_) => None,
            },
        }
    }
}

/// Window geometry: axis, pane width, slide, and allowed lateness (all in
/// ticks of the chosen axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// The tick axis.
    pub axis: TimeAxis,
    /// Pane width in ticks (> 0).
    pub width: u64,
    /// Distance between pane starts (> 0; equal to `width` for tumbling).
    pub slide: u64,
    /// How far behind the max tick the watermark trails. Out-of-order
    /// events within this horizon still land in their panes.
    pub allowed_lateness: u64,
}

impl WindowSpec {
    /// A tumbling event-time window.
    pub fn tumbling_time(width: SimDuration) -> Self {
        Self::sliding_time(width, width)
    }

    /// A sliding event-time window.
    pub fn sliding_time(width: SimDuration, slide: SimDuration) -> Self {
        WindowSpec {
            axis: TimeAxis::EventTime,
            width: width.as_nanos().max(1),
            slide: slide.as_nanos().max(1),
            allowed_lateness: 0,
        }
    }

    /// A tumbling step window.
    pub fn tumbling_steps(width: u64) -> Self {
        Self::sliding_steps(width, width)
    }

    /// A sliding step window.
    pub fn sliding_steps(width: u64, slide: u64) -> Self {
        WindowSpec {
            axis: TimeAxis::Step,
            width: width.max(1),
            slide: slide.max(1),
            allowed_lateness: 0,
        }
    }

    /// Sets the allowed lateness (in axis ticks).
    pub fn with_lateness(mut self, lateness: u64) -> Self {
        self.allowed_lateness = lateness;
        self
    }
}

/// Routes an event to its grouping key (`None` skips the event).
pub type KeyFn<K> = Box<dyn Fn(&TelemetryEvent) -> Option<K> + Send>;

/// Extracts an event's numeric value (`None` skips the event).
pub type ValueFn = Box<dyn Fn(&TelemetryEvent) -> Option<f64> + Send>;

/// One closed window pane for one key.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPane<K> {
    /// The grouping key.
    pub key: K,
    /// Pane start tick (inclusive).
    pub start: u64,
    /// Pane end tick (exclusive).
    pub end: u64,
    /// The folded aggregate.
    pub aggregate: Aggregate,
}

/// A keyed windowed aggregation stage: `group_by_key` + window + combiner
/// fused into one bounded-state operator.
///
/// Events are routed by `key_fn` (a `None` key skips the event) and folded
/// by `value_fn` into every open pane containing their tick. [`push`]
/// returns the panes the arrival closed, in deterministic
/// `(end, start, key)` order; [`flush`] closes everything left at
/// end-of-stream.
///
/// [`push`]: WindowedAggregate::push
/// [`flush`]: WindowedAggregate::flush
pub struct WindowedAggregate<K> {
    spec: WindowSpec,
    combiner: Combiner,
    key_fn: KeyFn<K>,
    value_fn: ValueFn,
    panes: BTreeMap<(u64, K), Aggregate>,
    max_tick: Option<u64>,
    late_dropped: u64,
}

impl<K: Ord + Clone> WindowedAggregate<K> {
    /// Creates a windowed aggregation stage.
    pub fn new(
        spec: WindowSpec,
        combiner: Combiner,
        key_fn: impl Fn(&TelemetryEvent) -> Option<K> + Send + 'static,
        value_fn: impl Fn(&TelemetryEvent) -> Option<f64> + Send + 'static,
    ) -> Self {
        WindowedAggregate {
            spec,
            combiner,
            key_fn: Box::new(key_fn),
            value_fn: Box::new(value_fn),
            panes: BTreeMap::new(),
            max_tick: None,
            late_dropped: 0,
        }
    }

    /// The current watermark: max tick seen minus allowed lateness (`None`
    /// before the first tick-bearing event).
    pub fn watermark(&self) -> Option<u64> {
        self.max_tick
            .map(|m| m.saturating_sub(self.spec.allowed_lateness))
    }

    /// Events dropped because every pane containing their tick had already
    /// closed.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Number of panes currently holding state (the bounded-memory
    /// quantity).
    pub fn open_panes(&self) -> usize {
        self.panes.len()
    }

    /// Feeds one event; returns the panes this arrival closed (possibly
    /// for other keys — closure is driven by the watermark, not the key).
    pub fn push(&mut self, event: &TelemetryEvent) -> Vec<WindowPane<K>> {
        let Some(tick) = self.spec.axis.tick(event) else {
            return Vec::new();
        };
        if let (Some(key), Some(value)) = ((self.key_fn)(event), (self.value_fn)(event)) {
            let watermark = self.watermark();
            let mut landed = false;
            let mut start = if tick < self.spec.width {
                0
            } else {
                ((tick - self.spec.width) / self.spec.slide + 1) * self.spec.slide
            };
            while start <= tick {
                let end = start.saturating_add(self.spec.width);
                if watermark.is_none_or(|w| w < end) {
                    self.panes
                        .entry((start, key.clone()))
                        .or_insert_with(|| Aggregate::new(self.combiner))
                        .push(value);
                    landed = true;
                }
                let Some(next) = start.checked_add(self.spec.slide) else {
                    break;
                };
                start = next;
            }
            if !landed {
                self.late_dropped += 1;
            }
        }
        self.max_tick = Some(self.max_tick.map_or(tick, |m| m.max(tick)));
        self.drain_closed()
    }

    /// Closes and returns every remaining pane (end of stream).
    pub fn flush(&mut self) -> Vec<WindowPane<K>> {
        let panes = std::mem::take(&mut self.panes);
        self.emit(panes)
    }

    fn drain_closed(&mut self) -> Vec<WindowPane<K>> {
        let Some(watermark) = self.watermark() else {
            return Vec::new();
        };
        // Pane keys are ordered by (start, key) and closure depends only on
        // start, so closed panes are exactly a prefix of the map.
        let mut closed = Vec::new();
        for k in self.panes.keys() {
            if k.0.saturating_add(self.spec.width) <= watermark {
                closed.push(k.clone());
            } else {
                break;
            }
        }
        closed
            .into_iter()
            .map(|k| {
                let aggregate = self.panes.remove(&k).expect("key collected from the map");
                WindowPane {
                    start: k.0,
                    end: k.0.saturating_add(self.spec.width),
                    key: k.1,
                    aggregate,
                }
            })
            .collect()
    }

    fn emit(&self, panes: BTreeMap<(u64, K), Aggregate>) -> Vec<WindowPane<K>> {
        panes
            .into_iter()
            .map(|((start, key), aggregate)| WindowPane {
                key,
                start,
                end: start.saturating_add(self.spec.width),
                aggregate,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::LoadSample;
    use c4_simcore::SimTime;

    fn load(rank: u32, step: u64, value: f64) -> TelemetryEvent {
        TelemetryEvent::Load(LoadSample {
            comm: 1,
            rank,
            step,
            at: SimTime::from_secs(step),
            value,
        })
    }

    fn per_rank(spec: WindowSpec) -> WindowedAggregate<u32> {
        WindowedAggregate::new(
            spec,
            Combiner::Mean,
            |e| match e {
                TelemetryEvent::Load(l) => Some(l.rank),
                _ => None,
            },
            |e| match e {
                TelemetryEvent::Load(l) => Some(l.value),
                _ => None,
            },
        )
    }

    #[test]
    fn boundary_event_opens_the_next_tumbling_pane() {
        // Width 4: step 4 sits exactly on the [0,4)/[4,8) boundary — it must
        // land in [4,8) only, and its arrival closes [0,4).
        let mut w = per_rank(WindowSpec::tumbling_steps(4));
        for step in 0..4 {
            assert!(w.push(&load(0, step, step as f64)).is_empty());
        }
        let closed = w.push(&load(0, 4, 100.0));
        assert_eq!(closed.len(), 1);
        assert_eq!((closed[0].start, closed[0].end), (0, 4));
        assert_eq!(closed[0].aggregate.count(), 4);
        assert_eq!(closed[0].aggregate.sum(), 0.0 + 1.0 + 2.0 + 3.0);
        let rest = w.flush();
        assert_eq!(rest.len(), 1);
        assert_eq!((rest[0].start, rest[0].end), (4, 8));
        assert_eq!(rest[0].aggregate.count(), 1);
    }

    #[test]
    fn sliding_panes_cover_each_event_width_over_slide_times() {
        let mut w = per_rank(WindowSpec::sliding_steps(3, 1));
        let mut closed = Vec::new();
        for step in 0..6 {
            closed.extend(w.push(&load(0, step, 1.0)));
        }
        closed.extend(w.flush());
        // Panes [0,3),[1,4),[2,5),[3,6) are full (count 3); the pane grid
        // starts at 0 (no negative starts), so there are no leading partial
        // panes — only the trailing [4,7),[5,8) are partial.
        let full: Vec<u64> = closed
            .iter()
            .filter(|p| p.aggregate.count() == 3)
            .map(|p| p.start)
            .collect();
        assert_eq!(full, vec![0, 1, 2, 3]);
        let counts: Vec<u64> = closed.iter().map(|p| p.aggregate.count()).collect();
        assert_eq!(counts, vec![3, 3, 3, 3, 2, 1]);
    }

    #[test]
    fn out_of_order_within_lateness_lands_late_beyond_is_dropped() {
        let mut w = per_rank(WindowSpec::tumbling_steps(2).with_lateness(2));
        assert!(w.push(&load(0, 3, 1.0)).is_empty()); // watermark 1: [0,2) open
        assert!(w.push(&load(0, 0, 5.0)).is_empty()); // in order horizon
        let closed = w.push(&load(0, 4, 1.0)); // watermark 2 closes [0,2)
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].aggregate.sum(), 5.0);
        assert_eq!(w.late_dropped(), 0);
        // Watermark is 2: a step-1 arrival's only pane [0,2) is gone.
        assert!(w.push(&load(0, 1, 9.0)).is_empty());
        assert_eq!(w.late_dropped(), 1);
        let rest = w.flush();
        assert_eq!(rest.iter().map(|p| p.aggregate.sum()).sum::<f64>(), 2.0);
    }

    #[test]
    fn empty_windows_emit_nothing() {
        // A gap in the stream (steps 0 then 10) must not emit empty panes
        // for the silent range — no detector input is fabricated.
        let mut w = per_rank(WindowSpec::tumbling_steps(2));
        assert!(w.push(&load(0, 0, 1.0)).is_empty());
        let closed = w.push(&load(0, 10, 1.0));
        assert_eq!(closed.len(), 1, "only the pane that saw data closes");
        assert_eq!((closed[0].start, closed[0].end), (0, 2));
        assert_eq!(w.flush().len(), 1);
    }

    #[test]
    fn keys_are_independent_and_emission_order_is_deterministic() {
        let mut w = per_rank(WindowSpec::tumbling_steps(2));
        w.push(&load(1, 0, 1.0));
        w.push(&load(0, 1, 2.0));
        let closed = w.push(&load(0, 2, 0.0));
        let keys: Vec<u32> = closed.iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![0, 1], "same pane, keys ascending");
    }

    #[test]
    fn state_stays_bounded_and_events_without_tick_pass_through() {
        let mut w = per_rank(WindowSpec::sliding_steps(4, 1));
        for step in 0..1000 {
            w.push(&load(0, step, 1.0));
        }
        assert!(
            w.open_panes() <= 4,
            "open panes bounded by width/slide, got {}",
            w.open_panes()
        );
        let comm = TelemetryEvent::Comm(crate::record::CommRecord {
            comm: 1,
            devices: vec![],
            created: SimTime::ZERO,
        });
        assert!(w.push(&comm).is_empty(), "no step axis on comm events");
        assert_eq!(w.watermark(), Some(999));
    }
}
