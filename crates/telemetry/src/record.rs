//! Record types for the four ACCL statistics streams (paper Fig 5/6).

use std::fmt;

use c4_simcore::{SimDuration, SimTime};
use c4_topology::{GpuId, PortId};

/// Collective operation type (the paper's operation layer, Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// Sum/average across all ranks (the DP gradient sync).
    AllReduce,
    /// Gather all shards to all ranks.
    AllGather,
    /// Reduce then scatter shards (ZeRO gradient path).
    ReduceScatter,
    /// One-to-all replication.
    Broadcast,
    /// Point-to-point send/recv (PP stage boundaries).
    SendRecv,
    /// Personalized exchange: every rank sends a shard to every other rank
    /// (EP token dispatch/combine).
    AllToAll,
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollKind::AllReduce => "allreduce",
            CollKind::AllGather => "allgather",
            CollKind::ReduceScatter => "reduce_scatter",
            CollKind::Broadcast => "broadcast",
            CollKind::SendRecv => "sendrecv",
            CollKind::AllToAll => "alltoall",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for CollKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "allreduce" => CollKind::AllReduce,
            "allgather" => CollKind::AllGather,
            "reduce_scatter" => CollKind::ReduceScatter,
            "broadcast" => CollKind::Broadcast,
            "sendrecv" => CollKind::SendRecv,
            "alltoall" => CollKind::AllToAll,
            other => return Err(format!("unknown collective kind {other:?}")),
        })
    }
}

/// Communication algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// Ring-based (the algorithm the paper's benchmarks pin, §IV-A).
    Ring,
    /// Tree-based.
    Tree,
}

impl fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlgoKind::Ring => "ring",
            AlgoKind::Tree => "tree",
        })
    }
}

impl std::str::FromStr for AlgoKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "ring" => AlgoKind::Ring,
            "tree" => AlgoKind::Tree,
            other => return Err(format!("unknown algorithm {other:?}")),
        })
    }
}

/// Element data type of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit float.
    F32,
    /// 16-bit float.
    F16,
    /// bfloat16.
    Bf16,
}

impl DataType {
    /// Bytes per element.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DataType::F32 => 4,
            DataType::F16 | DataType::Bf16 => 2,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::F32 => "f32",
            DataType::F16 => "f16",
            DataType::Bf16 => "bf16",
        })
    }
}

impl std::str::FromStr for DataType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "f32" => DataType::F32,
            "f16" => DataType::F16,
            "bf16" => DataType::Bf16,
            other => return Err(format!("unknown data type {other:?}")),
        })
    }
}

/// One communicator: which devices participate and their ranks
/// (`comm-stats.csv`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommRecord {
    /// Communicator id (unique per group per incarnation).
    pub comm: u64,
    /// Devices by rank order: `devices[rank] = gpu`.
    pub devices: Vec<GpuId>,
    /// Creation time.
    pub created: SimTime,
}

impl CommRecord {
    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.devices.len()
    }

    /// Rank of a device, if it participates.
    pub fn rank_of(&self, gpu: GpuId) -> Option<usize> {
        self.devices.iter().position(|&d| d == gpu)
    }
}

/// One collective operation instance as seen by one rank
/// (`coll-stats.csv`). A missing `end` means the operation never completed
/// on this rank — the raw signal behind C4D's hang detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollRecord {
    /// Communicator id.
    pub comm: u64,
    /// Monotone sequence number within the communicator.
    pub seq: u64,
    /// Reporting rank.
    pub rank: u32,
    /// Operation type.
    pub kind: CollKind,
    /// Algorithm.
    pub algo: AlgoKind,
    /// Element type.
    pub dtype: DataType,
    /// Element count.
    pub count: u64,
    /// Kernel start (the paper logs CUDA-kernel start/stop directly).
    pub start: SimTime,
    /// Kernel completion; `None` while in flight or hung.
    pub end: Option<SimTime>,
}

impl CollRecord {
    /// Payload bytes of this operation.
    pub fn bytes(&self) -> u64 {
        self.count * self.dtype.size_bytes()
    }

    /// Duration if completed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e - self.start)
    }
}

/// Identity of a transport connection (one QP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnKey {
    /// Communicator id.
    pub comm: u64,
    /// Channel index.
    pub channel: u16,
    /// QP index within the channel.
    pub qp: u16,
    /// Sending GPU.
    pub src_gpu: GpuId,
    /// Receiving GPU.
    pub dst_gpu: GpuId,
}

/// Aggregated transport statistics for one connection (`conn-stats.csv`):
/// message counts, bytes and durations, plus the source port that fixes the
/// network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnRecord {
    /// Connection identity.
    pub key: ConnKey,
    /// NIC physical port used on the sender (C4P's control knob).
    pub src_port: PortId,
    /// Messages transferred.
    pub messages: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Total transfer time across messages.
    pub busy: SimDuration,
    /// Completion time of the most recent message, if any.
    pub last_completion: Option<SimTime>,
}

impl ConnRecord {
    /// Creates an empty record for a connection.
    pub fn new(key: ConnKey, src_port: PortId) -> Self {
        ConnRecord {
            key,
            src_port,
            messages: 0,
            bytes: 0,
            busy: SimDuration::ZERO,
            last_completion: None,
        }
    }

    /// Folds one message transfer into the aggregate.
    pub fn record_message(&mut self, bytes: u64, duration: SimDuration, completed_at: SimTime) {
        self.messages += 1;
        self.bytes += bytes;
        self.busy += duration;
        self.last_completion = Some(match self.last_completion {
            Some(prev) => prev.max(completed_at),
            None => completed_at,
        });
    }

    /// Mean per-message transfer duration.
    pub fn mean_message_duration(&self) -> SimDuration {
        if self.messages == 0 {
            SimDuration::ZERO
        } else {
            self.busy / self.messages
        }
    }

    /// Effective throughput over busy time, in Gbps.
    pub fn effective_gbps(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / secs / 1e9
        }
    }
}

/// Per-rank execution rhythm for one step (`rank-stats.csv`): local compute
/// time and how long the rank kept its ring predecessor waiting
/// (receiver-driven wait, §III-A "non-communication slow detection").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankRecord {
    /// Communicator id.
    pub comm: u64,
    /// Reporting rank.
    pub rank: u32,
    /// Training step / iteration index.
    pub step: u64,
    /// Local non-communication time this step (compute + data loading).
    pub compute: SimDuration,
    /// Time this rank's receive was outstanding before it became ready
    /// (waiting on its own compute), as observed by the transport layer.
    pub ready_delay: SimDuration,
    /// When the rank arrived at the synchronization point.
    pub arrived: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_record_rank_lookup() {
        let rec = CommRecord {
            comm: 5,
            devices: vec![GpuId::from_index(3), GpuId::from_index(9)],
            created: SimTime::ZERO,
        };
        assert_eq!(rec.nranks(), 2);
        assert_eq!(rec.rank_of(GpuId::from_index(9)), Some(1));
        assert_eq!(rec.rank_of(GpuId::from_index(1)), None);
    }

    #[test]
    fn coll_record_bytes_and_duration() {
        let rec = CollRecord {
            comm: 1,
            seq: 0,
            rank: 0,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::F16,
            count: 1024,
            start: SimTime::from_secs(1),
            end: Some(SimTime::from_secs(2)),
        };
        assert_eq!(rec.bytes(), 2048);
        assert_eq!(rec.duration().unwrap(), SimDuration::from_secs(1));
        let hung = CollRecord { end: None, ..rec };
        assert!(hung.duration().is_none());
    }

    #[test]
    fn conn_record_aggregates_messages() {
        let key = ConnKey {
            comm: 1,
            channel: 0,
            qp: 0,
            src_gpu: GpuId::from_index(0),
            dst_gpu: GpuId::from_index(1),
        };
        let mut rec = ConnRecord::new(key, PortId::from_index(0));
        rec.record_message(
            1_000_000,
            SimDuration::from_millis(4),
            SimTime::from_secs(1),
        );
        rec.record_message(
            1_000_000,
            SimDuration::from_millis(6),
            SimTime::from_secs(2),
        );
        assert_eq!(rec.messages, 2);
        assert_eq!(rec.bytes, 2_000_000);
        assert_eq!(rec.mean_message_duration(), SimDuration::from_millis(5));
        assert_eq!(rec.last_completion, Some(SimTime::from_secs(2)));
        // 2 MB over 10 ms = 1.6 Gbps
        assert!((rec.effective_gbps() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn conn_record_last_completion_keeps_max() {
        let key = ConnKey {
            comm: 1,
            channel: 0,
            qp: 0,
            src_gpu: GpuId::from_index(0),
            dst_gpu: GpuId::from_index(1),
        };
        let mut rec = ConnRecord::new(key, PortId::from_index(0));
        rec.record_message(1, SimDuration::ZERO, SimTime::from_secs(9));
        rec.record_message(1, SimDuration::ZERO, SimTime::from_secs(3));
        assert_eq!(rec.last_completion, Some(SimTime::from_secs(9)));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(CollKind::AllReduce.to_string(), "allreduce");
        assert_eq!(AlgoKind::Ring.to_string(), "ring");
        assert_eq!(DataType::Bf16.to_string(), "bf16");
        assert_eq!(DataType::F32.size_bytes(), 4);
    }

    #[test]
    fn enum_names_parse_back() {
        for kind in [
            CollKind::AllReduce,
            CollKind::AllGather,
            CollKind::ReduceScatter,
            CollKind::Broadcast,
            CollKind::SendRecv,
            CollKind::AllToAll,
        ] {
            assert_eq!(kind.to_string().parse(), Ok(kind));
        }
        for algo in [AlgoKind::Ring, AlgoKind::Tree] {
            assert_eq!(algo.to_string().parse(), Ok(algo));
        }
        for dt in [DataType::F32, DataType::F16, DataType::Bf16] {
            assert_eq!(dt.to_string().parse(), Ok(dt));
        }
        assert!("nccl".parse::<CollKind>().is_err());
    }
}
