//! The master-side `summary.txt` artifact of the paper's Fig 5: a
//! cluster-level digest of the per-worker statistics the C4a agents shipped.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::worker::TelemetrySnapshot;

/// A cluster-level digest of worker snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Workers that reported.
    pub workers: usize,
    /// Distinct communicators observed.
    pub communicators: usize,
    /// Collective operations recorded (all ranks).
    pub collectives: usize,
    /// Collectives still in flight at snapshot time.
    pub in_flight: usize,
    /// Transport connections observed.
    pub connections: usize,
    /// Total bytes moved on the wire.
    pub bytes: u64,
    /// Slowest connection's effective throughput, Gbps (0 when none).
    pub slowest_conn_gbps: f64,
    /// Fastest connection's effective throughput, Gbps (0 when none).
    pub fastest_conn_gbps: f64,
}

impl ClusterSummary {
    /// Digests a set of worker snapshots.
    pub fn from_snapshots(snapshots: &[TelemetrySnapshot]) -> ClusterSummary {
        let mut comms: HashSet<u64> = HashSet::new();
        let mut collectives = 0;
        let mut in_flight = 0;
        let mut connections = 0;
        let mut bytes = 0u64;
        let mut slowest = f64::INFINITY;
        let mut fastest = 0.0_f64;
        for snap in snapshots {
            for c in &snap.comms {
                comms.insert(c.comm);
            }
            collectives += snap.colls.len();
            in_flight += snap.in_flight().count();
            for conn in &snap.conns {
                connections += 1;
                bytes += conn.bytes;
                let g = conn.effective_gbps();
                if g > 0.0 {
                    slowest = slowest.min(g);
                    fastest = fastest.max(g);
                }
            }
        }
        ClusterSummary {
            workers: snapshots.len(),
            communicators: comms.len(),
            collectives,
            in_flight,
            connections,
            bytes,
            slowest_conn_gbps: if slowest.is_finite() { slowest } else { 0.0 },
            fastest_conn_gbps: fastest,
        }
    }

    /// Renders the `summary.txt` document.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "C4 cluster telemetry summary");
        let _ = writeln!(out, "workers reporting:     {}", self.workers);
        let _ = writeln!(out, "communicators:         {}", self.communicators);
        let _ = writeln!(out, "collective records:    {}", self.collectives);
        let _ = writeln!(out, "in flight:             {}", self.in_flight);
        let _ = writeln!(out, "transport connections: {}", self.connections);
        let _ = writeln!(out, "bytes on the wire:     {}", self.bytes);
        let _ = writeln!(
            out,
            "connection throughput: {:.2} – {:.2} Gbps",
            self.slowest_conn_gbps, self.fastest_conn_gbps
        );
        if self.in_flight > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} collective(s) outstanding — check hang detectors",
                self.in_flight
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AlgoKind, CollKind, CollRecord, CommRecord, ConnKey, DataType};
    use crate::worker::WorkerTelemetry;
    use c4_simcore::{SimDuration, SimTime};
    use c4_topology::{GpuId, PortId};

    fn snapshot(gpu: usize, hang: bool) -> TelemetrySnapshot {
        let g = GpuId::from_index(gpu);
        let mut w = WorkerTelemetry::new(g);
        w.record_comm(CommRecord {
            comm: 7,
            devices: vec![g],
            created: SimTime::ZERO,
        });
        w.record_coll(CollRecord {
            comm: 7,
            seq: 0,
            rank: gpu as u32,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::Bf16,
            count: 10,
            start: SimTime::from_secs(1),
            end: (!hang).then(|| SimTime::from_secs(2)),
        });
        w.record_message(
            ConnKey {
                comm: 7,
                channel: 0,
                qp: 0,
                src_gpu: g,
                dst_gpu: GpuId::from_index(gpu + 1),
            },
            PortId::from_index(0),
            1_000_000_000,
            SimDuration::from_secs(1),
            SimTime::from_secs(2),
        );
        w.snapshot(SimTime::from_secs(3))
    }

    #[test]
    fn digest_counts_everything() {
        let snaps = vec![snapshot(0, false), snapshot(1, true)];
        let s = ClusterSummary::from_snapshots(&snaps);
        assert_eq!(s.workers, 2);
        assert_eq!(s.communicators, 1);
        assert_eq!(s.collectives, 2);
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.connections, 2);
        assert_eq!(s.bytes, 2_000_000_000);
        // 1 GB over 1 s = 8 Gbps on both connections.
        assert!((s.slowest_conn_gbps - 8.0).abs() < 1e-9);
        assert!((s.fastest_conn_gbps - 8.0).abs() < 1e-9);
    }

    #[test]
    fn text_flags_outstanding_collectives() {
        let snaps = vec![snapshot(0, true)];
        let text = ClusterSummary::from_snapshots(&snaps).to_text();
        assert!(text.contains("WARNING"));
        assert!(text.contains("workers reporting:     1"));
    }

    #[test]
    fn empty_cluster_is_all_zero() {
        let s = ClusterSummary::from_snapshots(&[]);
        assert_eq!(s.workers, 0);
        assert_eq!(s.slowest_conn_gbps, 0.0);
        assert!(!s.to_text().contains("WARNING"));
    }
}
