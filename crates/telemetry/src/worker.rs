//! Per-worker telemetry store and the snapshot the C4a agent ships to the
//! C4D master.
//!
//! Each training worker (one per GPU) owns a [`WorkerTelemetry`]; the
//! enhanced communication library appends records as collectives execute.
//! The C4a agent periodically takes a [`TelemetrySnapshot`] and forwards it
//! to the central master, which is where cross-worker comparison (the heart
//! of C4D) happens.

use std::collections::HashMap;

use c4_simcore::{SimDuration, SimTime};
use c4_topology::{GpuId, PortId};

use crate::record::{CollRecord, CommRecord, ConnKey, ConnRecord, RankRecord};

/// All statistics one worker has accumulated.
#[derive(Debug, Clone, Default)]
pub struct WorkerTelemetry {
    gpu: Option<GpuId>,
    comms: Vec<CommRecord>,
    colls: Vec<CollRecord>,
    conns: HashMap<ConnKey, ConnRecord>,
    ranks: Vec<RankRecord>,
}

impl WorkerTelemetry {
    /// Creates an empty store for the given worker GPU.
    pub fn new(gpu: GpuId) -> Self {
        WorkerTelemetry {
            gpu: Some(gpu),
            ..Default::default()
        }
    }

    /// The worker's GPU.
    pub fn gpu(&self) -> Option<GpuId> {
        self.gpu
    }

    /// Registers a communicator.
    pub fn record_comm(&mut self, rec: CommRecord) {
        self.comms.push(rec);
    }

    /// Appends a collective-operation record.
    pub fn record_coll(&mut self, rec: CollRecord) {
        self.colls.push(rec);
    }

    /// Marks the most recent matching in-flight collective as completed.
    ///
    /// Returns `true` if a matching in-flight record was found.
    pub fn complete_coll(&mut self, comm: u64, seq: u64, end: SimTime) -> bool {
        for rec in self.colls.iter_mut().rev() {
            if rec.comm == comm && rec.seq == seq && rec.end.is_none() {
                rec.end = Some(end);
                return true;
            }
        }
        false
    }

    /// Folds a message transfer into the connection aggregate, creating the
    /// connection record on first use.
    pub fn record_message(
        &mut self,
        key: ConnKey,
        src_port: PortId,
        bytes: u64,
        duration: SimDuration,
        completed_at: SimTime,
    ) {
        self.conns
            .entry(key)
            .or_insert_with(|| ConnRecord::new(key, src_port))
            .record_message(bytes, duration, completed_at);
    }

    /// Appends a per-step rank record.
    pub fn record_rank(&mut self, rec: RankRecord) {
        self.ranks.push(rec);
    }

    /// Communicator records.
    pub fn comms(&self) -> &[CommRecord] {
        &self.comms
    }

    /// Collective records, append order.
    pub fn colls(&self) -> &[CollRecord] {
        &self.colls
    }

    /// Connection aggregates.
    pub fn conns(&self) -> impl Iterator<Item = &ConnRecord> {
        self.conns.values()
    }

    /// Connection aggregate for a specific key.
    pub fn conn(&self, key: &ConnKey) -> Option<&ConnRecord> {
        self.conns.get(key)
    }

    /// Rank records, append order.
    pub fn ranks(&self) -> &[RankRecord] {
        &self.ranks
    }

    /// Collectives still in flight (no completion recorded).
    pub fn in_flight(&self) -> impl Iterator<Item = &CollRecord> {
        self.colls.iter().filter(|c| c.end.is_none())
    }

    /// Drops all records (job restart).
    pub fn clear(&mut self) {
        self.comms.clear();
        self.colls.clear();
        self.conns.clear();
        self.ranks.clear();
    }

    /// Takes an immutable snapshot for shipping to the master.
    pub fn snapshot(&self, taken: SimTime) -> TelemetrySnapshot {
        TelemetrySnapshot {
            gpu: self.gpu,
            taken,
            comms: self.comms.clone(),
            colls: self.colls.clone(),
            conns: self.conns.values().copied().collect(),
            ranks: self.ranks.clone(),
        }
    }
}

/// What the C4a agent sends to the C4D master: a point-in-time copy of a
/// worker's statistics.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// The worker's GPU.
    pub gpu: Option<GpuId>,
    /// When the snapshot was taken.
    pub taken: SimTime,
    /// Communicator records.
    pub comms: Vec<CommRecord>,
    /// Collective records.
    pub colls: Vec<CollRecord>,
    /// Connection aggregates (unordered).
    pub conns: Vec<ConnRecord>,
    /// Rank records.
    pub ranks: Vec<RankRecord>,
}

impl TelemetrySnapshot {
    /// Collectives still in flight at snapshot time.
    pub fn in_flight(&self) -> impl Iterator<Item = &CollRecord> {
        self.colls.iter().filter(|c| c.end.is_none())
    }

    /// Highest completed sequence number per communicator.
    pub fn last_completed_seq(&self, comm: u64) -> Option<u64> {
        self.colls
            .iter()
            .filter(|c| c.comm == comm && c.end.is_some())
            .map(|c| c.seq)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AlgoKind, CollKind, DataType};

    fn coll(comm: u64, seq: u64, end: Option<SimTime>) -> CollRecord {
        CollRecord {
            comm,
            seq,
            rank: 0,
            kind: CollKind::AllReduce,
            algo: AlgoKind::Ring,
            dtype: DataType::F32,
            count: 1,
            start: SimTime::from_secs(seq),
            end,
        }
    }

    #[test]
    fn complete_coll_matches_in_flight_only() {
        let mut w = WorkerTelemetry::new(GpuId::from_index(0));
        w.record_coll(coll(1, 0, Some(SimTime::from_secs(1))));
        w.record_coll(coll(1, 1, None));
        assert!(w.complete_coll(1, 1, SimTime::from_secs(2)));
        assert!(
            !w.complete_coll(1, 1, SimTime::from_secs(3)),
            "already done"
        );
        assert!(!w.complete_coll(1, 9, SimTime::from_secs(3)), "no such seq");
        assert_eq!(w.in_flight().count(), 0);
    }

    #[test]
    fn messages_aggregate_per_connection() {
        let mut w = WorkerTelemetry::new(GpuId::from_index(0));
        let key = ConnKey {
            comm: 1,
            channel: 0,
            qp: 1,
            src_gpu: GpuId::from_index(0),
            dst_gpu: GpuId::from_index(8),
        };
        for i in 0..3 {
            w.record_message(
                key,
                PortId::from_index(4),
                100,
                SimDuration::from_millis(2),
                SimTime::from_secs(i),
            );
        }
        let rec = w.conn(&key).unwrap();
        assert_eq!(rec.messages, 3);
        assert_eq!(rec.bytes, 300);
        assert_eq!(w.conns().count(), 1);
    }

    #[test]
    fn snapshot_is_a_faithful_copy() {
        let mut w = WorkerTelemetry::new(GpuId::from_index(7));
        w.record_comm(CommRecord {
            comm: 1,
            devices: vec![GpuId::from_index(7)],
            created: SimTime::ZERO,
        });
        w.record_coll(coll(1, 0, None));
        let snap = w.snapshot(SimTime::from_secs(10));
        assert_eq!(snap.gpu, Some(GpuId::from_index(7)));
        assert_eq!(snap.taken, SimTime::from_secs(10));
        assert_eq!(snap.comms.len(), 1);
        assert_eq!(snap.in_flight().count(), 1);
        // Mutating the worker afterwards does not affect the snapshot.
        w.complete_coll(1, 0, SimTime::from_secs(11));
        assert_eq!(snap.in_flight().count(), 1);
    }

    #[test]
    fn last_completed_seq_ignores_in_flight() {
        let mut w = WorkerTelemetry::new(GpuId::from_index(0));
        w.record_coll(coll(1, 0, Some(SimTime::from_secs(1))));
        w.record_coll(coll(1, 1, Some(SimTime::from_secs(2))));
        w.record_coll(coll(1, 2, None));
        let snap = w.snapshot(SimTime::from_secs(3));
        assert_eq!(snap.last_completed_seq(1), Some(1));
        assert_eq!(snap.last_completed_seq(2), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = WorkerTelemetry::new(GpuId::from_index(0));
        w.record_coll(coll(1, 0, None));
        w.record_rank(RankRecord {
            comm: 1,
            rank: 0,
            step: 0,
            compute: SimDuration::from_millis(1),
            ready_delay: SimDuration::ZERO,
            arrived: SimTime::ZERO,
        });
        w.clear();
        assert!(w.colls().is_empty());
        assert!(w.ranks().is_empty());
        assert_eq!(w.conns().count(), 0);
        assert_eq!(w.gpu(), Some(GpuId::from_index(0)));
    }
}
