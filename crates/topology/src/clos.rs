//! Parametric Clos / fat-tree configuration ([`ClosConfig`]) and the wiring
//! schemes that map NIC ports onto leaf switches.
//!
//! The defaults mirror Table II of the paper: nodes with 8 H800 GPUs and
//! 8 BlueField-3 NICs (2 × 200 Gbps ports bonded to a logical 400 Gbps port),
//! a fat-tree with 1:1 oversubscription, and an NVLink fabric that caps
//! collective bus bandwidth at 362 Gbps.

use serde::{Deserialize, Serialize};

/// How NIC ports are assigned to leaf switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WiringMode {
    /// Rail-optimized: rail `r` of *every* node lands on the same leaf pair
    /// (`r mod leaf_pairs`), so same-rail traffic between any two nodes can
    /// stay under one leaf. This is the dedicated-testbed wiring.
    RailOptimized,
    /// Leaves are partitioned into `groups` equal groups and nodes are
    /// assigned to groups in contiguous blocks; traffic between nodes of
    /// different groups must traverse the spine layer. Used to reproduce the
    /// multi-job experiments (Fig 10/12) where jobs span "distinct groups of
    /// leaf switches".
    NodeGrouped {
        /// Number of leaf groups; must divide the leaf count and leave at
        /// least two leaves per group.
        groups: usize,
    },
}

/// Full parametric description of a cluster.
///
/// # Example
///
/// ```
/// use c4_topology::ClosConfig;
/// let cfg = ClosConfig::testbed_128();
/// assert_eq!(cfg.nodes * cfg.gpus_per_node, 128);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosConfig {
    /// Number of servers.
    pub nodes: usize,
    /// GPUs per server (testbed: 8).
    pub gpus_per_node: usize,
    /// NICs (rails) per server (testbed: 8); GPUs map to rails round-robin.
    pub nics_per_node: usize,
    /// Leaf switches; must be even (ports attach in left/right pairs).
    pub num_leaves: usize,
    /// Spine switches.
    pub num_spines: usize,
    /// Parallel uplinks between each leaf and each spine.
    pub uplinks_per_leaf_spine: u8,
    /// Capacity of one NIC physical port, Gbps (testbed: 200).
    pub port_gbps: f64,
    /// Capacity of one leaf↔spine fabric link, Gbps (testbed: 200).
    pub fabric_gbps: f64,
    /// Effective per-GPU NVLink bandwidth, Gbps. The paper measures the
    /// NVLink-fabric cap on allreduce bus bandwidth as 362 Gbps (§IV-B2).
    pub nvlink_gbps: f64,
    /// Effective per-GPU PCIe bandwidth towards the NIC, Gbps. Healthy PCIe
    /// is not a bottleneck; PCIe-downgrade faults scale this down.
    pub pcie_gbps: f64,
    /// Port→leaf wiring scheme.
    pub wiring: WiringMode,
}

impl ClosConfig {
    /// The 128-GPU dedicated testbed of §IV-A: 16 nodes × 8 GPUs, 8 dual-port
    /// NICs per node, 8 leaves, 8 spines, 1:1 oversubscription
    /// (32 × 200 Gbps host downlinks per leaf = 32 × 200 Gbps uplinks).
    pub fn testbed_128() -> Self {
        ClosConfig {
            nodes: 16,
            gpus_per_node: 8,
            nics_per_node: 8,
            num_leaves: 8,
            num_spines: 8,
            uplinks_per_leaf_spine: 4,
            port_gbps: 200.0,
            fabric_gbps: 200.0,
            nvlink_gbps: 362.0,
            pcie_gbps: 400.0,
            wiring: WiringMode::RailOptimized,
        }
    }

    /// The testbed re-wired into `groups` leaf groups so that jobs spanning
    /// groups must cross the spine layer (the Fig 10/12/13 setup).
    pub fn testbed_128_grouped(groups: usize) -> Self {
        ClosConfig {
            wiring: WiringMode::NodeGrouped { groups },
            ..Self::testbed_128()
        }
    }

    /// A small cluster for unit tests: `nodes` servers with 2 GPUs + 2 NICs
    /// each, 2 leaves, 2 spines.
    pub fn tiny(nodes: usize) -> Self {
        ClosConfig {
            nodes,
            gpus_per_node: 2,
            nics_per_node: 2,
            num_leaves: 2,
            num_spines: 2,
            uplinks_per_leaf_spine: 2,
            port_gbps: 200.0,
            fabric_gbps: 200.0,
            nvlink_gbps: 362.0,
            pcie_gbps: 400.0,
            wiring: WiringMode::RailOptimized,
        }
    }

    /// A shared production pod for the Fig 3 scaling experiment: 16 leaves
    /// but only half the spine capacity available to the job (concurrent
    /// tenants consume the rest on average), i.e. effective 2:1
    /// oversubscription — the regime in which traffic collisions grow with
    /// scale (§II-D).
    pub fn pod_shared(nodes: usize) -> Self {
        ClosConfig {
            num_spines: 4,
            uplinks_per_leaf_spine: 4,
            fabric_gbps: 400.0,
            ..Self::pod(nodes)
        }
    }

    /// A large production-style pod for scale experiments (Fig 3):
    /// `nodes` × 8 GPUs with 16 leaves and 8 spines.
    pub fn pod(nodes: usize) -> Self {
        ClosConfig {
            nodes,
            gpus_per_node: 8,
            nics_per_node: 8,
            num_leaves: 16,
            num_spines: 8,
            uplinks_per_leaf_spine: 8,
            port_gbps: 200.0,
            fabric_gbps: 200.0,
            nvlink_gbps: 362.0,
            pcie_gbps: 400.0,
            wiring: WiringMode::RailOptimized,
        }
    }

    /// A multi-pod production fabric for the multi-thousand-GPU scale sweep
    /// (the Fig 3 extension): `nodes` servers at testbed leaf density (each
    /// leaf terminates 32 × 200 Gbps host ports, so the leaf tier grows
    /// with the cluster instead of being fixed at 16), partitioned into
    /// `groups` leaf groups so jobs spanning groups must cross the spine
    /// layer, with trunked 400 Gbps spine uplinks at 2:1 oversubscription —
    /// the shared-pod regime in which traffic collisions grow with scale
    /// (§II-D).
    ///
    /// Valid whenever `nodes/2` leaves split into `groups` even-sized
    /// groups of ≥ 2 (e.g. 512 nodes / 8 groups → 256 leaves, 32 per
    /// group); [`ClosConfig::validate`] rejects the rest.
    pub fn pod_grouped(nodes: usize, groups: usize) -> Self {
        ClosConfig {
            nodes,
            gpus_per_node: 8,
            nics_per_node: 8,
            num_leaves: (nodes / 2).max(2),
            num_spines: 8,
            uplinks_per_leaf_spine: 1,
            port_gbps: 200.0,
            fabric_gbps: 400.0,
            nvlink_gbps: 362.0,
            pcie_gbps: 400.0,
            wiring: WiringMode::NodeGrouped { groups },
        }
    }

    /// The [`pod_grouped`](ClosConfig::pod_grouped) fabric with leaf density
    /// that tracks the **8 NIC rails**: past 256 nodes the plain variant's
    /// leaf tier outgrows the rail count (each group gets more leaf pairs
    /// than rails, so half its leaves terminate no ports while the wired
    /// half carries double density — the per-flow fair share halves at
    /// 4096 GPUs). This variant caps the leaf pairs per group at
    /// `nics_per_node` and widens the leaf↔spine trunks instead, keeping
    /// every leaf wired and the oversubscription at 2:1 at any scale.
    /// Identical to `pod_grouped` for `nodes ≤ 256` (with 8 groups).
    ///
    /// # Panics
    ///
    /// Panics when the wired-port capacity per leaf does not divide into
    /// whole 2:1 trunks (use power-of-two node counts).
    pub fn pod_grouped_railed(nodes: usize, groups: usize) -> Self {
        let mut cfg = Self::pod_grouped(nodes, groups);
        let max_leaves = groups * cfg.nics_per_node * 2;
        if cfg.num_leaves > max_leaves {
            cfg.num_leaves = max_leaves;
            // Hold the 2:1 ratio: each leaf now terminates
            // nodes×nics×2/num_leaves ports; uplink capacity must be half
            // the downlink.
            let down_gbps = cfg.downlink_gbps_per_leaf();
            let per_spine = down_gbps / 2.0 / cfg.num_spines as f64 / cfg.fabric_gbps;
            assert!(
                per_spine.fract() == 0.0 && per_spine >= 1.0 && per_spine <= u8::MAX as f64,
                "rail-dense pod needs whole 2:1 trunks, got {per_spine} per spine"
            );
            cfg.uplinks_per_leaf_spine = per_spine as u8;
        }
        cfg
    }

    /// Collapses parallel leaf↔spine links into one trunk of the same
    /// aggregate capacity (LAG/trunked uplinks, as on the testbed whose
    /// leaves expose 8 fat uplinks — "1 link error among the 8 uplinks",
    /// §IV-B2). Trunks absorb shallow ECMP collisions: two flows on a
    /// 4×-trunk still get full rate, which is why the paper's baseline
    /// degrades but does not collapse.
    pub fn trunked(self) -> Self {
        ClosConfig {
            fabric_gbps: self.fabric_gbps * self.uplinks_per_leaf_spine as f64,
            uplinks_per_leaf_spine: 1,
            ..self
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Number of leaf pairs available to a node's rails under the given
    /// wiring (leaves per group halved).
    pub fn leaf_pairs_per_group(&self) -> usize {
        self.num_leaves / self.groups() / 2
    }

    /// Number of leaf groups (1 for rail-optimized wiring).
    pub fn groups(&self) -> usize {
        match self.wiring {
            WiringMode::RailOptimized => 1,
            WiringMode::NodeGrouped { groups } => groups,
        }
    }

    /// Leaf group of a node (contiguous blocks; 0 for rail-optimized wiring).
    pub fn group_of_node(&self, node: usize) -> usize {
        let groups = self.groups();
        if groups <= 1 {
            return 0;
        }
        let per_group = self.nodes.div_ceil(groups);
        (node / per_group).min(groups - 1)
    }

    /// Aggregate host-downlink capacity per leaf, Gbps (used to report the
    /// achieved oversubscription ratio).
    pub fn downlink_gbps_per_leaf(&self) -> f64 {
        let total_ports = self.nodes as f64 * self.nics_per_node as f64 * 2.0;
        total_ports * self.port_gbps / self.num_leaves as f64
    }

    /// Aggregate fabric-uplink capacity per leaf, Gbps.
    pub fn uplink_gbps_per_leaf(&self) -> f64 {
        self.num_spines as f64 * self.uplinks_per_leaf_spine as f64 * self.fabric_gbps
    }

    /// Downlink/uplink capacity ratio per leaf (1.0 = the paper's 1:1).
    pub fn oversubscription(&self) -> f64 {
        self.downlink_gbps_per_leaf() / self.uplink_gbps_per_leaf()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant:
    /// zero-sized tiers, odd leaf counts, groups that do not divide the
    /// leaves, or fewer than two leaves per group.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        if self.gpus_per_node == 0 || self.nics_per_node == 0 {
            return Err("nodes need at least one GPU and one NIC".into());
        }
        if !self.gpus_per_node.is_multiple_of(self.nics_per_node) {
            return Err(format!(
                "gpus_per_node ({}) must be a multiple of nics_per_node ({})",
                self.gpus_per_node, self.nics_per_node
            ));
        }
        if self.num_leaves == 0 || !self.num_leaves.is_multiple_of(2) {
            return Err("leaf count must be positive and even".into());
        }
        if self.num_spines == 0 || self.uplinks_per_leaf_spine == 0 {
            return Err("fabric needs at least one spine and one uplink".into());
        }
        let groups = self.groups();
        if groups == 0 || !self.num_leaves.is_multiple_of(groups) {
            return Err(format!(
                "groups ({groups}) must divide the leaf count ({})",
                self.num_leaves
            ));
        }
        if self.num_leaves / groups < 2 {
            return Err("each leaf group needs at least two leaves".into());
        }
        if !(self.num_leaves / groups).is_multiple_of(2) {
            return Err("leaves per group must be even".into());
        }
        for (name, v) in [
            ("port_gbps", self.port_gbps),
            ("fabric_gbps", self.fabric_gbps),
            ("nvlink_gbps", self.nvlink_gbps),
            ("pcie_gbps", self.pcie_gbps),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite"));
            }
        }
        Ok(())
    }
}

impl Default for ClosConfig {
    fn default() -> Self {
        ClosConfig::testbed_128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_is_valid_and_one_to_one() {
        let cfg = ClosConfig::testbed_128();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_gpus(), 128);
        // 16 nodes × 8 NICs × 2 ports / 8 leaves = 32 ports/leaf × 200 G
        assert!((cfg.downlink_gbps_per_leaf() - 6400.0).abs() < 1e-9);
        assert!((cfg.uplink_gbps_per_leaf() - 6400.0).abs() < 1e-9);
        assert!((cfg.oversubscription() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grouped_wiring_partitions_nodes() {
        let cfg = ClosConfig::testbed_128_grouped(2);
        cfg.validate().unwrap();
        assert_eq!(cfg.groups(), 2);
        assert_eq!(cfg.group_of_node(0), 0);
        assert_eq!(cfg.group_of_node(7), 0);
        assert_eq!(cfg.group_of_node(8), 1);
        assert_eq!(cfg.group_of_node(15), 1);
        assert_eq!(cfg.leaf_pairs_per_group(), 2);
    }

    #[test]
    fn pod_grouped_scales_leaves_with_nodes_at_two_to_one() {
        for (nodes, groups) in [(16usize, 2usize), (64, 4), (512, 8)] {
            let cfg = ClosConfig::pod_grouped(nodes, groups);
            cfg.validate().unwrap();
            assert_eq!(cfg.total_gpus(), nodes * 8);
            assert_eq!(cfg.num_leaves, nodes / 2);
            assert!(
                (cfg.oversubscription() - 2.0).abs() < 1e-9,
                "{nodes} nodes: oversub {}",
                cfg.oversubscription()
            );
        }
        // 512 nodes / 8 groups: jobs wider than 64 nodes must span groups.
        let cfg = ClosConfig::pod_grouped(512, 8);
        assert_eq!(cfg.group_of_node(63), 0);
        assert_eq!(cfg.group_of_node(64), 1);
        // Odd shapes fail validation instead of mis-wiring.
        assert!(ClosConfig::pod_grouped(6, 3).validate().is_err());
    }

    #[test]
    fn pod_grouped_railed_keeps_every_leaf_wired_at_two_to_one() {
        // ≤ 256 nodes: identical to the plain variant.
        for nodes in [64usize, 128, 256] {
            assert_eq!(
                ClosConfig::pod_grouped_railed(nodes, 8),
                ClosConfig::pod_grouped(nodes, 8),
                "{nodes} nodes"
            );
        }
        // Past 256 nodes the leaf tier pins to the rail count (16 leaves
        // per group) and the trunks widen to hold 2:1.
        let cfg = ClosConfig::pod_grouped_railed(512, 8);
        cfg.validate().unwrap();
        assert_eq!(cfg.num_leaves, 8 * 16);
        assert_eq!(cfg.uplinks_per_leaf_spine, 2);
        assert!(
            (cfg.oversubscription() - 2.0).abs() < 1e-9,
            "oversub {}",
            cfg.oversubscription()
        );
        // Leaf pairs per group match the 8 rails exactly: every leaf
        // terminates ports (no dark leaves, no double-density leaves).
        assert_eq!(cfg.leaf_pairs_per_group(), cfg.nics_per_node);
        let cfg = ClosConfig::pod_grouped_railed(1024, 8);
        cfg.validate().unwrap();
        assert_eq!(cfg.uplinks_per_leaf_spine, 4);
        assert!((cfg.oversubscription() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pod_grouped_railed_scales_to_16k_and_32k_gpus() {
        // The 16384- and 32768-GPU cells of the scale sweep: the leaf tier
        // stays pinned at 8 rails × 8 groups while the trunks keep doubling,
        // so the 2:1 oversubscription and full leaf wiring hold through the
        // next two octaves past the 4096-GPU testbed extension.
        for (nodes, trunks) in [(2048usize, 8u8), (4096, 16)] {
            let cfg = ClosConfig::pod_grouped_railed(nodes, 8);
            cfg.validate().unwrap();
            assert_eq!(cfg.total_gpus(), nodes * 8, "{nodes} nodes");
            assert_eq!(cfg.num_leaves, 8 * 16, "{nodes} nodes");
            assert_eq!(cfg.uplinks_per_leaf_spine, trunks, "{nodes} nodes");
            assert!((cfg.oversubscription() - 2.0).abs() < 1e-9);
            assert_eq!(cfg.leaf_pairs_per_group(), cfg.nics_per_node);
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = ClosConfig::tiny(2);
        cfg.num_leaves = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = ClosConfig::tiny(2);
        cfg.gpus_per_node = 3;
        cfg.nics_per_node = 2;
        assert!(cfg.validate().is_err());

        let mut cfg = ClosConfig::tiny(2);
        cfg.wiring = WiringMode::NodeGrouped { groups: 3 };
        assert!(cfg.validate().is_err());

        let mut cfg = ClosConfig::tiny(0);
        cfg.nodes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ClosConfig::tiny(2);
        cfg.port_gbps = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn group_of_node_handles_uneven_blocks() {
        let mut cfg = ClosConfig::testbed_128_grouped(4);
        cfg.nodes = 10; // blocks of ceil(10/4)=3 → groups 0,0,0,1,1,1,2,2,2,3
        assert_eq!(cfg.group_of_node(0), 0);
        assert_eq!(cfg.group_of_node(3), 1);
        assert_eq!(cfg.group_of_node(9), 3);
        // never exceeds groups-1
        assert_eq!(cfg.group_of_node(100), 3);
    }
}
