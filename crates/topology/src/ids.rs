//! Typed identifiers for every topology entity.
//!
//! All identifiers are dense indices assigned by the builder, so they can be
//! used directly as `Vec` indices by the simulators. Newtypes keep a `GpuId`
//! from ever being confused with a `NicId` at compile time (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a dense index.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id index exceeds u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// A server (host) in the cluster.
    NodeId,
    "node"
);
define_id!(
    /// A GPU, indexed globally across the cluster.
    GpuId,
    "gpu"
);
define_id!(
    /// A NIC (one rail of a node), indexed globally.
    NicId,
    "nic"
);
define_id!(
    /// One physical port of a dual-port NIC, indexed globally.
    PortId,
    "port"
);
define_id!(
    /// A leaf or spine switch.
    SwitchId,
    "sw"
);
define_id!(
    /// A directed capacity-bearing link.
    LinkId,
    "link"
);

/// Which of the two bonded physical ports of a NIC.
///
/// The paper's C4P balances receive traffic between the *left* and *right*
/// physical ports of each BlueField-3 NIC (§III-B), so the side is a
/// first-class concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortSide {
    /// The first bonded physical port.
    Left,
    /// The second bonded physical port.
    Right,
}

impl PortSide {
    /// Both sides, left first.
    pub const BOTH: [PortSide; 2] = [PortSide::Left, PortSide::Right];

    /// The opposite side.
    pub fn other(self) -> PortSide {
        match self {
            PortSide::Left => PortSide::Right,
            PortSide::Right => PortSide::Left,
        }
    }

    /// 0 for left, 1 for right.
    pub const fn index(self) -> usize {
        match self {
            PortSide::Left => 0,
            PortSide::Right => 1,
        }
    }

    /// Inverse of [`PortSide::index`] (any even value maps to left).
    pub fn from_index(i: usize) -> PortSide {
        if i.is_multiple_of(2) {
            PortSide::Left
        } else {
            PortSide::Right
        }
    }
}

impl fmt::Display for PortSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortSide::Left => write!(f, "L"),
            PortSide::Right => write!(f, "R"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_display() {
        let g = GpuId::from_index(42);
        assert_eq!(g.index(), 42);
        assert_eq!(usize::from(g), 42);
        assert_eq!(g.to_string(), "gpu42");
        assert_eq!(LinkId::from_index(7).to_string(), "link7");
    }

    #[test]
    fn port_side_round_trip() {
        assert_eq!(PortSide::Left.other(), PortSide::Right);
        assert_eq!(PortSide::Right.other(), PortSide::Left);
        assert_eq!(PortSide::from_index(0), PortSide::Left);
        assert_eq!(PortSide::from_index(1), PortSide::Right);
        assert_eq!(PortSide::from_index(2), PortSide::Left);
        assert_eq!(PortSide::Left.index(), 0);
        assert_eq!(PortSide::Right.index(), 1);
        assert_eq!(PortSide::Left.to_string(), "L");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = NodeId::from_index(1);
        let b = NodeId::from_index(2);
        assert!(a < b);
        let set: HashSet<NodeId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
