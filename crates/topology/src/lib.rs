//! # c4-topology
//!
//! Cluster and network topology model for the C4 reproduction: servers with
//! GPUs and dual-port RDMA NICs, leaf/spine switches wired as a Clos
//! fat-tree, and the directed capacity-bearing links between them.
//!
//! The model mirrors the testbed of the paper (§IV-A): nodes with 8 NVIDIA
//! H800 GPUs and 8 BlueField-3 NICs, each NIC exposing two physical 200 Gbps
//! ports bonded into one logical 400 Gbps port, leaves and spines in a
//! fat-tree with configurable oversubscription, and an intra-node NVLink
//! fabric that caps collective bus bandwidth at 362 Gbps.
//!
//! Everything the higher layers need reduces to two queries:
//!
//! * *device structure* — which GPU lives on which node, which NIC (rail) it
//!   uses, which leaf each NIC port attaches to ([`Topology`] accessors);
//! * *path structure* — the candidate routes between two endpoints, as lists
//!   of directed [`LinkId`]s ([`Topology::fabric_paths`],
//!   [`Topology::intra_node_route`], …).
//!
//! # Example
//!
//! ```
//! use c4_topology::{ClosConfig, Topology};
//!
//! let topo = Topology::build(&ClosConfig::testbed_128());
//! assert_eq!(topo.num_gpus(), 128);
//! assert_eq!(topo.num_nodes(), 16);
//! assert_eq!(topo.num_leaves(), 8);
//! ```

pub mod clos;
pub mod ids;
pub mod link;
pub mod paths;
pub mod topology;

pub use clos::{ClosConfig, WiringMode};
pub use ids::{GpuId, LinkId, NicId, NodeId, PortId, PortSide, SwitchId};
pub use link::{Link, LinkKind};
pub use paths::FabricPath;
pub use topology::{Gpu, Nic, NicPort, Node, Switch, SwitchTier, Topology};
