//! Directed links: the capacity-bearing edges of the topology graph.
//!
//! Every physical cable is modeled as *two* directed links (one per
//! direction) because traffic collisions — the phenomenon C4P exists to
//! eliminate — are per-direction: a congested leaf→spine uplink says nothing
//! about the reverse spine→leaf direction.
//!
//! Link kinds cover the whole data path of a collective transfer:
//! GPU NVLink egress/ingress (intra-node edges), GPU PCIe egress/ingress (to
//! reach the NIC), host links between NIC ports and leaves, and fabric links
//! between leaves and spines.

use serde::{Deserialize, Serialize};

use c4_simcore::Bandwidth;

use crate::ids::{GpuId, LinkId, PortId, SwitchId};

/// What a directed link connects, and therefore which failure/degradation
/// modes apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// NVLink egress of a GPU: carries intra-node ring edges out of the GPU.
    NvlinkTx(GpuId),
    /// NVLink ingress of a GPU.
    NvlinkRx(GpuId),
    /// PCIe egress of a GPU towards its NIC (subject to PCIe downgrade
    /// faults).
    PcieTx(GpuId),
    /// PCIe ingress of a GPU from its NIC.
    PcieRx(GpuId),
    /// NIC physical port → leaf switch (host uplink).
    HostUp(PortId),
    /// Leaf switch → NIC physical port (host downlink). This is the link on
    /// which the paper's dual-port receive imbalance materializes.
    HostDown(PortId),
    /// Leaf → spine fabric uplink; `index` distinguishes parallel uplinks.
    FabricUp {
        /// Source leaf.
        leaf: SwitchId,
        /// Destination spine.
        spine: SwitchId,
        /// Parallel-uplink index within the (leaf, spine) pair.
        index: u8,
    },
    /// Spine → leaf fabric downlink; `index` distinguishes parallel links.
    FabricDown {
        /// Source spine.
        spine: SwitchId,
        /// Destination leaf.
        leaf: SwitchId,
        /// Parallel-downlink index within the (spine, leaf) pair.
        index: u8,
    },
}

impl LinkKind {
    /// True for leaf↔spine fabric links (the ones C4P path-probes).
    pub fn is_fabric(&self) -> bool {
        matches!(
            self,
            LinkKind::FabricUp { .. } | LinkKind::FabricDown { .. }
        )
    }

    /// True for NIC↔leaf host links.
    pub fn is_host(&self) -> bool {
        matches!(self, LinkKind::HostUp(_) | LinkKind::HostDown(_))
    }

    /// True for intra-node (NVLink or PCIe) links.
    pub fn is_intra_node(&self) -> bool {
        matches!(
            self,
            LinkKind::NvlinkTx(_)
                | LinkKind::NvlinkRx(_)
                | LinkKind::PcieTx(_)
                | LinkKind::PcieRx(_)
        )
    }
}

/// A directed, capacity-bearing link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    id: LinkId,
    kind: LinkKind,
    capacity: Bandwidth,
    up: bool,
    degradation: f64,
}

impl Link {
    /// Creates a healthy link of the given kind and capacity.
    pub fn new(id: LinkId, kind: LinkKind, capacity: Bandwidth) -> Self {
        Link {
            id,
            kind,
            capacity,
            up: true,
            degradation: 1.0,
        }
    }

    /// The link identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The link kind.
    pub fn kind(&self) -> LinkKind {
        self.kind
    }

    /// Nominal (healthy, undegraded) capacity.
    pub fn nominal_capacity(&self) -> Bandwidth {
        self.capacity
    }

    /// Effective capacity: zero when down, otherwise nominal × degradation.
    pub fn capacity(&self) -> Bandwidth {
        if self.up {
            self.capacity * self.degradation
        } else {
            Bandwidth::ZERO
        }
    }

    /// True when the link is administratively and physically up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Brings the link up or down (down-links are what Fig 12/13 exercise).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Degradation factor in `(0, 1]`; e.g. a PCIe ×16→×4 downgrade sets
    /// `0.25`. Values outside the range are clamped.
    pub fn set_degradation(&mut self, factor: f64) {
        self.degradation = if factor.is_finite() {
            factor.clamp(0.0, 1.0)
        } else {
            1.0
        };
    }

    /// Current degradation factor.
    pub fn degradation(&self) -> f64 {
        self.degradation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(
            LinkId::from_index(0),
            LinkKind::HostUp(PortId::from_index(3)),
            Bandwidth::from_gbps(200.0),
        )
    }

    #[test]
    fn healthy_link_has_nominal_capacity() {
        let l = link();
        assert!(l.is_up());
        assert_eq!(l.capacity().as_gbps(), 200.0);
        assert_eq!(l.nominal_capacity().as_gbps(), 200.0);
    }

    #[test]
    fn down_link_has_zero_capacity() {
        let mut l = link();
        l.set_up(false);
        assert_eq!(l.capacity(), Bandwidth::ZERO);
        l.set_up(true);
        assert_eq!(l.capacity().as_gbps(), 200.0);
    }

    #[test]
    fn degradation_scales_capacity() {
        let mut l = link();
        l.set_degradation(0.25);
        assert!((l.capacity().as_gbps() - 50.0).abs() < 1e-9);
        l.set_degradation(7.0);
        assert_eq!(l.capacity().as_gbps(), 200.0);
        l.set_degradation(f64::NAN);
        assert_eq!(l.degradation(), 1.0);
    }

    #[test]
    fn kind_predicates() {
        assert!(LinkKind::HostUp(PortId::from_index(0)).is_host());
        assert!(LinkKind::NvlinkTx(GpuId::from_index(0)).is_intra_node());
        assert!(LinkKind::PcieRx(GpuId::from_index(0)).is_intra_node());
        assert!(LinkKind::FabricUp {
            leaf: SwitchId::from_index(0),
            spine: SwitchId::from_index(1),
            index: 0
        }
        .is_fabric());
        assert!(!LinkKind::HostDown(PortId::from_index(0)).is_fabric());
    }
}
