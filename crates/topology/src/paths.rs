//! Fabric paths: the unit of C4P's traffic engineering.
//!
//! A [`FabricPath`] is one concrete way to cross the spine layer between two
//! leaves: an uplink, a spine, and a downlink. On hardware the path is
//! selected implicitly by the RDMA source port through ECMP hashing; here it
//! is selected explicitly, and the ECMP baseline reproduces the hashing on
//! top (see `c4-netsim`).

use crate::ids::{LinkId, SwitchId};
use crate::topology::Topology;

/// One leaf→spine→leaf crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricPath {
    /// The spine this path transits.
    pub spine: SwitchId,
    /// Leaf → spine uplink.
    pub up: LinkId,
    /// Spine → leaf downlink.
    pub down: LinkId,
    /// Parallel-link slot index (k-th uplink paired with k-th downlink).
    pub slot: u8,
}

impl FabricPath {
    /// True when both constituent links are up and undegraded below the
    /// given threshold (1.0 = fully healthy required).
    pub fn is_healthy(&self, topo: &Topology) -> bool {
        let up = topo.link(self.up);
        let down = topo.link(self.down);
        up.is_up() && down.is_up() && up.degradation() >= 1.0 && down.degradation() >= 1.0
    }

    /// The tighter of the two links' current capacities, in Gbps.
    pub fn bottleneck_gbps(&self, topo: &Topology) -> f64 {
        topo.link(self.up)
            .capacity()
            .min(topo.link(self.down).capacity())
            .as_gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clos::ClosConfig;

    #[test]
    fn health_reflects_link_state() {
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let paths = t.fabric_paths(t.leaves()[0], t.leaves()[4]);
        assert!(paths.iter().all(|p| p.is_healthy(&t)));
        let victim = paths[5];
        t.link_mut(victim.up).set_up(false);
        assert!(!victim.is_healthy(&t));
        assert_eq!(victim.bottleneck_gbps(&t), 0.0);
        // Sibling paths unaffected.
        assert!(paths
            .iter()
            .filter(|p| p.up != victim.up)
            .all(|p| p.is_healthy(&t)));
    }

    #[test]
    fn degradation_marks_unhealthy() {
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let paths = t.fabric_paths(t.leaves()[1], t.leaves()[6]);
        let victim = paths[0];
        t.link_mut(victim.down).set_degradation(0.5);
        assert!(!victim.is_healthy(&t));
        assert_eq!(victim.bottleneck_gbps(&t), 100.0);
    }
}
