//! The built topology: device inventory, switch tiers, directed links and
//! the structural queries used by the simulators.

use c4_simcore::Bandwidth;

use crate::clos::ClosConfig;
use crate::ids::{GpuId, LinkId, NicId, NodeId, PortId, PortSide, SwitchId};
use crate::link::{Link, LinkKind};
use crate::paths::FabricPath;

/// A server: a set of GPUs and NICs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// This node's identifier.
    pub id: NodeId,
    /// GPUs hosted on this node, in local-index order.
    pub gpus: Vec<GpuId>,
    /// NICs (rails) on this node, in local-index order.
    pub nics: Vec<NicId>,
    /// Leaf group this node's rails attach to.
    pub group: usize,
}

/// A GPU and its place in the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gpu {
    /// This GPU's identifier (global, dense).
    pub id: GpuId,
    /// Hosting node.
    pub node: NodeId,
    /// Index within the node (0..gpus_per_node).
    pub local_index: usize,
    /// The NIC (rail) this GPU uses for inter-node traffic.
    pub nic: NicId,
    /// NVLink egress link.
    pub nvlink_tx: LinkId,
    /// NVLink ingress link.
    pub nvlink_rx: LinkId,
    /// PCIe egress link (GPU → NIC).
    pub pcie_tx: LinkId,
    /// PCIe ingress link (NIC → GPU).
    pub pcie_rx: LinkId,
}

/// A dual-port NIC (one rail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nic {
    /// This NIC's identifier.
    pub id: NicId,
    /// Hosting node.
    pub node: NodeId,
    /// Rail index within the node (0..nics_per_node).
    pub local_index: usize,
    /// The two bonded physical ports, `[left, right]`.
    pub ports: [PortId; 2],
}

/// One physical port of a NIC, attached to a leaf by a full-duplex cable
/// (modeled as an up link and a down link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicPort {
    /// This port's identifier.
    pub id: PortId,
    /// Owning NIC.
    pub nic: NicId,
    /// Left or right bonded port.
    pub side: PortSide,
    /// The leaf switch this port attaches to.
    pub leaf: SwitchId,
    /// Port → leaf directed link.
    pub host_up: LinkId,
    /// Leaf → port directed link.
    pub host_down: LinkId,
}

/// Leaf or spine tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchTier {
    /// Leaf (ToR) switch; hosts NIC ports.
    Leaf,
    /// Spine switch; interconnects leaves.
    Spine,
}

/// A switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Switch {
    /// This switch's identifier (global across tiers).
    pub id: SwitchId,
    /// Leaf or spine.
    pub tier: SwitchTier,
    /// Index within its tier.
    pub tier_index: usize,
}

/// The complete built topology.
///
/// Construction happens once via [`Topology::build`]; afterwards the struct
/// is queried (immutably) by the simulators, with the narrow exception of
/// link state changes (failures, degradations) and node-health marking, both
/// of which are part of the phenomena under study.
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: ClosConfig,
    nodes: Vec<Node>,
    gpus: Vec<Gpu>,
    nics: Vec<Nic>,
    ports: Vec<NicPort>,
    switches: Vec<Switch>,
    links: Vec<Link>,
    /// fabric_up[leaf_tier_idx][spine_tier_idx] → parallel uplink ids.
    fabric_up: Vec<Vec<Vec<LinkId>>>,
    /// fabric_down[spine_tier_idx][leaf_tier_idx] → parallel downlink ids.
    fabric_down: Vec<Vec<Vec<LinkId>>>,
    leaves: Vec<SwitchId>,
    spines: Vec<SwitchId>,
    node_healthy: Vec<bool>,
    /// Bumped on every mutation (link state, node health, spine toggles) so
    /// caches keyed on the topology know when their entries went stale.
    version: u64,
}

impl Topology {
    /// Builds the topology described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails; call it first for a `Result`.
    pub fn build(cfg: &ClosConfig) -> Topology {
        cfg.validate().expect("invalid ClosConfig");
        let mut links: Vec<Link> = Vec::new();
        let mut new_link = |kind: LinkKind, gbps: f64| -> LinkId {
            let id = LinkId::from_index(links.len());
            links.push(Link::new(id, kind, Bandwidth::from_gbps(gbps)));
            id
        };

        // Switches: leaves first, then spines.
        let mut switches = Vec::new();
        let mut leaves = Vec::new();
        let mut spines = Vec::new();
        for i in 0..cfg.num_leaves {
            let id = SwitchId::from_index(switches.len());
            switches.push(Switch {
                id,
                tier: SwitchTier::Leaf,
                tier_index: i,
            });
            leaves.push(id);
        }
        for i in 0..cfg.num_spines {
            let id = SwitchId::from_index(switches.len());
            switches.push(Switch {
                id,
                tier: SwitchTier::Spine,
                tier_index: i,
            });
            spines.push(id);
        }

        // Fabric links: full leaf×spine mesh with parallel uplinks.
        let mut fabric_up = vec![vec![Vec::new(); cfg.num_spines]; cfg.num_leaves];
        let mut fabric_down = vec![vec![Vec::new(); cfg.num_leaves]; cfg.num_spines];
        for (li, &leaf) in leaves.iter().enumerate() {
            for (si, &spine) in spines.iter().enumerate() {
                for k in 0..cfg.uplinks_per_leaf_spine {
                    let up = new_link(
                        LinkKind::FabricUp {
                            leaf,
                            spine,
                            index: k,
                        },
                        cfg.fabric_gbps,
                    );
                    let down = new_link(
                        LinkKind::FabricDown {
                            spine,
                            leaf,
                            index: k,
                        },
                        cfg.fabric_gbps,
                    );
                    fabric_up[li][si].push(up);
                    fabric_down[si][li].push(down);
                }
            }
        }

        // Nodes, GPUs, NICs, ports.
        let mut nodes = Vec::with_capacity(cfg.nodes);
        let mut gpus = Vec::with_capacity(cfg.total_gpus());
        let mut nics = Vec::new();
        let mut ports = Vec::new();
        let leaves_per_group = cfg.num_leaves / cfg.groups();
        let pairs_per_group = leaves_per_group / 2;

        for n in 0..cfg.nodes {
            let node_id = NodeId::from_index(n);
            let group = cfg.group_of_node(n);
            let mut node_nics = Vec::with_capacity(cfg.nics_per_node);
            for r in 0..cfg.nics_per_node {
                let nic_id = NicId::from_index(nics.len());
                // Rail r lands on pair (r mod pairs) within the node's group.
                let pair = r % pairs_per_group;
                let leaf_left = leaves[group * leaves_per_group + pair * 2];
                let leaf_right = leaves[group * leaves_per_group + pair * 2 + 1];
                let mut port_ids = [PortId::default(); 2];
                for (pi, (side, leaf)) in
                    [(PortSide::Left, leaf_left), (PortSide::Right, leaf_right)]
                        .into_iter()
                        .enumerate()
                {
                    let port_id = PortId::from_index(ports.len());
                    let host_up = new_link(LinkKind::HostUp(port_id), cfg.port_gbps);
                    let host_down = new_link(LinkKind::HostDown(port_id), cfg.port_gbps);
                    ports.push(NicPort {
                        id: port_id,
                        nic: nic_id,
                        side,
                        leaf,
                        host_up,
                        host_down,
                    });
                    port_ids[pi] = port_id;
                }
                nics.push(Nic {
                    id: nic_id,
                    node: node_id,
                    local_index: r,
                    ports: port_ids,
                });
                node_nics.push(nic_id);
            }

            let mut node_gpus = Vec::with_capacity(cfg.gpus_per_node);
            for g in 0..cfg.gpus_per_node {
                let gpu_id = GpuId::from_index(gpus.len());
                let nic = node_nics[g % cfg.nics_per_node];
                let nvlink_tx = new_link(LinkKind::NvlinkTx(gpu_id), cfg.nvlink_gbps);
                let nvlink_rx = new_link(LinkKind::NvlinkRx(gpu_id), cfg.nvlink_gbps);
                let pcie_tx = new_link(LinkKind::PcieTx(gpu_id), cfg.pcie_gbps);
                let pcie_rx = new_link(LinkKind::PcieRx(gpu_id), cfg.pcie_gbps);
                gpus.push(Gpu {
                    id: gpu_id,
                    node: node_id,
                    local_index: g,
                    nic,
                    nvlink_tx,
                    nvlink_rx,
                    pcie_tx,
                    pcie_rx,
                });
                node_gpus.push(gpu_id);
            }

            nodes.push(Node {
                id: node_id,
                gpus: node_gpus,
                nics: node_nics,
                group,
            });
        }

        let node_healthy = vec![true; cfg.nodes];
        Topology {
            cfg: cfg.clone(),
            nodes,
            gpus,
            nics,
            ports,
            switches,
            links,
            fabric_up,
            fabric_down,
            leaves,
            spines,
            node_healthy,
            version: 0,
        }
    }

    /// Mutation counter: changes whenever link state, node health or spine
    /// state is touched. Derived caches (e.g. the collective engine's
    /// flow-plan cache) compare versions to detect staleness. Versions are
    /// only meaningful within one `Topology` instance (clones included, as
    /// long as they share a mutation history).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &ClosConfig {
        &self.cfg
    }

    /// Total GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Total nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total leaf switches.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Total spine switches.
    pub fn num_spines(&self) -> usize {
        self.spines.len()
    }

    /// Total directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Node record.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// GPU record.
    pub fn gpu(&self, id: GpuId) -> &Gpu {
        &self.gpus[id.index()]
    }

    /// NIC record.
    pub fn nic(&self, id: NicId) -> &Nic {
        &self.nics[id.index()]
    }

    /// Port record.
    pub fn port(&self, id: PortId) -> &NicPort {
        &self.ports[id.index()]
    }

    /// Switch record.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// Link record.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable link record (fault injection, C4P-driven administrative
    /// changes). Conservatively bumps [`Topology::version`] — callers take
    /// this to mutate.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        self.version += 1;
        &mut self.links[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All GPUs in id order.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// All NICs in id order.
    pub fn nics(&self) -> &[Nic] {
        &self.nics
    }

    /// All ports in id order.
    pub fn ports(&self) -> &[NicPort] {
        &self.ports
    }

    /// All links in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Leaf switch ids in tier order.
    pub fn leaves(&self) -> &[SwitchId] {
        &self.leaves
    }

    /// Spine switch ids in tier order.
    pub fn spines(&self) -> &[SwitchId] {
        &self.spines
    }

    /// The GPU at `(node, local_index)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn gpu_at(&self, node: NodeId, local_index: usize) -> GpuId {
        self.nodes[node.index()].gpus[local_index]
    }

    /// The two ports of the NIC serving `gpu`, `[left, right]`.
    pub fn ports_of_gpu(&self, gpu: GpuId) -> [PortId; 2] {
        self.nics[self.gpus[gpu.index()].nic.index()].ports
    }

    /// The port of `gpu`'s NIC on the given side.
    pub fn port_of_gpu(&self, gpu: GpuId, side: PortSide) -> PortId {
        self.ports_of_gpu(gpu)[side.index()]
    }

    /// Parallel uplink ids between a leaf and a spine (tier indices).
    pub fn fabric_up_links(&self, leaf_idx: usize, spine_idx: usize) -> &[LinkId] {
        &self.fabric_up[leaf_idx][spine_idx]
    }

    /// Parallel downlink ids between a spine and a leaf (tier indices).
    pub fn fabric_down_links(&self, spine_idx: usize, leaf_idx: usize) -> &[LinkId] {
        &self.fabric_down[spine_idx][leaf_idx]
    }

    /// Every candidate spine path from `src_leaf` to `dst_leaf`: one entry
    /// per (spine, parallel-uplink k) pairing the k-th uplink with the k-th
    /// downlink. Includes paths over down links (callers filter on
    /// [`FabricPath::is_healthy`]).
    pub fn fabric_paths(&self, src_leaf: SwitchId, dst_leaf: SwitchId) -> Vec<FabricPath> {
        let li = self.switch(src_leaf).tier_index;
        let lj = self.switch(dst_leaf).tier_index;
        let mut out = Vec::new();
        for (si, &spine) in self.spines.iter().enumerate() {
            let ups = &self.fabric_up[li][si];
            let downs = &self.fabric_down[si][lj];
            for (k, (&up, &down)) in ups.iter().zip(downs.iter()).enumerate() {
                out.push(FabricPath {
                    spine,
                    up,
                    down,
                    slot: k as u8,
                });
            }
        }
        out
    }

    /// True when both ports attach to the same leaf (flow can avoid spines).
    pub fn same_leaf(&self, a: PortId, b: PortId) -> bool {
        self.port(a).leaf == self.port(b).leaf
    }

    /// Route for an intra-node transfer: NVLink egress then ingress.
    ///
    /// # Panics
    ///
    /// Panics if the GPUs are on different nodes.
    pub fn intra_node_route(&self, src: GpuId, dst: GpuId) -> Vec<LinkId> {
        let (s, d) = (self.gpu(src), self.gpu(dst));
        assert_eq!(s.node, d.node, "intra-node route requires colocated GPUs");
        vec![s.nvlink_tx, d.nvlink_rx]
    }

    /// Route for an inter-node transfer through explicit ports and an
    /// optional fabric path (`None` when both ports share a leaf).
    ///
    /// # Panics
    ///
    /// Panics if the ports are on different leaves but no fabric path is
    /// given, or if a fabric path is given that does not connect the two
    /// leaves.
    pub fn inter_node_route(
        &self,
        src: GpuId,
        src_port: PortId,
        fabric: Option<&FabricPath>,
        dst_port: PortId,
        dst: GpuId,
    ) -> Vec<LinkId> {
        let sp = self.port(src_port);
        let dp = self.port(dst_port);
        let mut route = vec![self.gpu(src).pcie_tx, sp.host_up];
        match fabric {
            None => {
                assert_eq!(
                    sp.leaf, dp.leaf,
                    "cross-leaf transfer requires a fabric path"
                );
            }
            Some(p) => {
                let up_kind = self.link(p.up).kind();
                let down_kind = self.link(p.down).kind();
                match (up_kind, down_kind) {
                    (
                        LinkKind::FabricUp { leaf: ul, .. },
                        LinkKind::FabricDown { leaf: dl, .. },
                    ) => {
                        assert_eq!(ul, sp.leaf, "fabric path does not start at source leaf");
                        assert_eq!(dl, dp.leaf, "fabric path does not end at destination leaf");
                    }
                    _ => panic!("fabric path links are not fabric links"),
                }
                route.push(p.up);
                route.push(p.down);
            }
        }
        route.push(dp.host_down);
        route.push(self.gpu(dst).pcie_rx);
        route
    }

    /// Marks a node healthy/unhealthy (C4D isolation).
    pub fn set_node_healthy(&mut self, node: NodeId, healthy: bool) {
        self.version += 1;
        self.node_healthy[node.index()] = healthy;
    }

    /// True when the node has not been isolated.
    pub fn is_node_healthy(&self, node: NodeId) -> bool {
        self.node_healthy[node.index()]
    }

    /// Ids of all currently healthy nodes.
    pub fn healthy_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| self.node_healthy[n.id.index()])
            .map(|n| n.id)
            .collect()
    }

    /// Brings every fabric link touching `spine` up or down (used to halve
    /// the spine layer for the 2:1 oversubscription experiments).
    pub fn set_spine_up(&mut self, spine: SwitchId, up: bool) {
        self.version += 1;
        let si = self.switch(spine).tier_index;
        let affected: Vec<LinkId> = self
            .fabric_up
            .iter()
            .flat_map(|per_leaf| per_leaf[si].iter().copied())
            .chain(self.fabric_down[si].iter().flatten().copied())
            .collect();
        for id in affected {
            self.links[id.index()].set_up(up);
        }
    }

    /// All fabric link ids (up and down), for probing.
    pub fn fabric_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.kind().is_fabric())
            .map(|l| l.id())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_counts() {
        let t = Topology::build(&ClosConfig::testbed_128());
        assert_eq!(t.num_gpus(), 128);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_leaves(), 8);
        assert_eq!(t.num_spines(), 8);
        assert_eq!(t.nics().len(), 16 * 8);
        assert_eq!(t.ports().len(), 16 * 8 * 2);
        // links: fabric 8*8*4*2 + host 256*2 + per-gpu 128*4
        assert_eq!(t.num_links(), 8 * 8 * 4 * 2 + 256 * 2 + 128 * 4);
    }

    #[test]
    fn gpu_rail_mapping_is_one_to_one_on_testbed() {
        let t = Topology::build(&ClosConfig::testbed_128());
        for node in t.nodes() {
            for (i, &g) in node.gpus.iter().enumerate() {
                assert_eq!(t.gpu(g).nic, node.nics[i]);
            }
        }
    }

    #[test]
    fn rail_optimized_ports_share_leaves_across_nodes() {
        let t = Topology::build(&ClosConfig::testbed_128());
        // Same rail, same side, different nodes → same leaf.
        let g0 = t.gpu_at(NodeId::from_index(0), 3);
        let g1 = t.gpu_at(NodeId::from_index(9), 3);
        let p0 = t.port_of_gpu(g0, PortSide::Left);
        let p1 = t.port_of_gpu(g1, PortSide::Left);
        assert_eq!(t.port(p0).leaf, t.port(p1).leaf);
        // Left and right of one NIC → different leaves.
        let pr = t.port_of_gpu(g0, PortSide::Right);
        assert_ne!(t.port(p0).leaf, t.port(pr).leaf);
    }

    #[test]
    fn grouped_wiring_separates_groups() {
        let t = Topology::build(&ClosConfig::testbed_128_grouped(2));
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(8), 0);
        let pa = t.port_of_gpu(a, PortSide::Left);
        let pb = t.port_of_gpu(b, PortSide::Left);
        assert_ne!(t.port(pa).leaf, t.port(pb).leaf);
        assert!(!t.same_leaf(pa, pb));
        assert_eq!(t.node(NodeId::from_index(0)).group, 0);
        assert_eq!(t.node(NodeId::from_index(8)).group, 1);
    }

    #[test]
    fn fabric_paths_enumerate_spines_and_slots() {
        let t = Topology::build(&ClosConfig::testbed_128());
        let paths = t.fabric_paths(t.leaves()[0], t.leaves()[2]);
        assert_eq!(paths.len(), 8 * 4);
        for p in &paths {
            match t.link(p.up).kind() {
                LinkKind::FabricUp { leaf, spine, .. } => {
                    assert_eq!(leaf, t.leaves()[0]);
                    assert_eq!(spine, p.spine);
                }
                k => panic!("unexpected kind {k:?}"),
            }
            match t.link(p.down).kind() {
                LinkKind::FabricDown { leaf, spine, .. } => {
                    assert_eq!(leaf, t.leaves()[2]);
                    assert_eq!(spine, p.spine);
                }
                k => panic!("unexpected kind {k:?}"),
            }
        }
    }

    #[test]
    fn intra_node_route_uses_nvlink() {
        let t = Topology::build(&ClosConfig::tiny(2));
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(0), 1);
        let route = t.intra_node_route(a, b);
        assert_eq!(route.len(), 2);
        assert!(matches!(t.link(route[0]).kind(), LinkKind::NvlinkTx(g) if g == a));
        assert!(matches!(t.link(route[1]).kind(), LinkKind::NvlinkRx(g) if g == b));
    }

    #[test]
    #[should_panic(expected = "colocated")]
    fn intra_node_route_rejects_cross_node() {
        let t = Topology::build(&ClosConfig::tiny(2));
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(1), 0);
        let _ = t.intra_node_route(a, b);
    }

    #[test]
    fn inter_node_route_same_leaf_skips_fabric() {
        let t = Topology::build(&ClosConfig::testbed_128());
        // Same rail, same side → same leaf under rail-optimized wiring.
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(1), 0);
        let pa = t.port_of_gpu(a, PortSide::Left);
        let pb = t.port_of_gpu(b, PortSide::Left);
        let route = t.inter_node_route(a, pa, None, pb, b);
        assert_eq!(route.len(), 4); // pcie_tx, host_up, host_down, pcie_rx
    }

    #[test]
    fn inter_node_route_cross_leaf_includes_fabric() {
        let t = Topology::build(&ClosConfig::testbed_128_grouped(2));
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(8), 0);
        let pa = t.port_of_gpu(a, PortSide::Left);
        let pb = t.port_of_gpu(b, PortSide::Left);
        let paths = t.fabric_paths(t.port(pa).leaf, t.port(pb).leaf);
        let route = t.inter_node_route(a, pa, Some(&paths[0]), pb, b);
        assert_eq!(route.len(), 6);
    }

    #[test]
    #[should_panic(expected = "requires a fabric path")]
    fn cross_leaf_without_fabric_panics() {
        let t = Topology::build(&ClosConfig::testbed_128_grouped(2));
        let a = t.gpu_at(NodeId::from_index(0), 0);
        let b = t.gpu_at(NodeId::from_index(8), 0);
        let pa = t.port_of_gpu(a, PortSide::Left);
        let pb = t.port_of_gpu(b, PortSide::Left);
        let _ = t.inter_node_route(a, pa, None, pb, b);
    }

    #[test]
    fn spine_disable_downs_its_links() {
        let mut t = Topology::build(&ClosConfig::testbed_128());
        let spine = t.spines()[3];
        t.set_spine_up(spine, false);
        let li = 0;
        let si = 3;
        for &l in t.fabric_up_links(li, si) {
            assert!(!t.link(l).is_up());
        }
        for &l in t.fabric_down_links(si, li) {
            assert!(!t.link(l).is_up());
        }
        // Other spines unaffected.
        for &l in t.fabric_up_links(0, 0) {
            assert!(t.link(l).is_up());
        }
        t.set_spine_up(spine, true);
        for &l in t.fabric_up_links(li, si) {
            assert!(t.link(l).is_up());
        }
    }

    #[test]
    fn node_health_marking() {
        let mut t = Topology::build(&ClosConfig::tiny(4));
        assert_eq!(t.healthy_nodes().len(), 4);
        t.set_node_healthy(NodeId::from_index(2), false);
        assert!(!t.is_node_healthy(NodeId::from_index(2)));
        assert_eq!(t.healthy_nodes().len(), 3);
    }
}
