//! Month-scale operation simulation: the downtime ledger behind Table III
//! and the crash census behind Table I.
//!
//! Wall time = productive time + downtime. Faults arrive as a Poisson
//! process over *productive* time (a parked job doesn't throw CUDA errors);
//! every crash costs post-checkpoint loss + detection + diagnosis &
//! isolation + re-initialization (Fig 2's runtime-failure pipeline).

use c4_faults::{FaultKind, FaultRates, UserView};
use c4_simcore::{DetRng, SimDuration, SimTime};

use crate::recovery::RecoveryConfig;

/// Shape and models of one long-running job under operation.
#[derive(Debug, Clone)]
pub struct OperationConfig {
    /// GPUs in the job (Table III job: 2,400).
    pub gpus: usize,
    /// Nodes in the job.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Wall-clock horizon (one month).
    pub horizon: SimDuration,
    /// Fleet fault rates.
    pub rates: FaultRates,
    /// Recovery pipeline timings.
    pub recovery: RecoveryConfig,
}

impl OperationConfig {
    /// The Table III job in June 2023: 2,400 GPUs, manual operations.
    pub fn june_2023_175b() -> Self {
        OperationConfig {
            gpus: 2400,
            nodes: 300,
            gpus_per_node: 8,
            horizon: SimDuration::from_hours(720),
            rates: FaultRates::june_2023(),
            recovery: RecoveryConfig::june_2023(),
        }
    }

    /// The same job in December 2023: hardened fleet + C4D.
    pub fn december_2023_175b() -> Self {
        OperationConfig {
            rates: FaultRates::december_2023(),
            recovery: RecoveryConfig::december_2023(),
            ..Self::june_2023_175b()
        }
    }

    /// The Table I job: 4,096 GPUs under June-2023 conditions.
    pub fn june_2023_4096() -> Self {
        OperationConfig {
            gpus: 4096,
            nodes: 512,
            ..Self::june_2023_175b()
        }
    }
}

/// One crash and its full cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRecord {
    /// Root cause.
    pub kind: FaultKind,
    /// Whether the instance was confined to one node/device.
    pub local: bool,
    /// How it surfaced to the user pre-diagnosis.
    pub user_view: UserView,
    /// Wall-clock time of the crash.
    pub at: SimTime,
    /// Productive time lost since the last checkpoint.
    pub post_checkpoint: SimDuration,
    /// Fault-to-awareness delay.
    pub detection: SimDuration,
    /// Diagnosis + isolation delay.
    pub diagnosis: SimDuration,
    /// Re-initialization cost.
    pub reinit: SimDuration,
}

impl CrashRecord {
    /// Total downtime this crash caused.
    pub fn downtime(&self) -> SimDuration {
        self.post_checkpoint + self.detection + self.diagnosis + self.reinit
    }
}

/// A full operation run.
#[derive(Debug, Clone)]
pub struct OperationReport {
    /// Wall-clock horizon simulated.
    pub horizon: SimDuration,
    /// Every crash, in time order.
    pub crashes: Vec<CrashRecord>,
}

/// One row of the Table I census.
#[derive(Debug, Clone, PartialEq)]
pub struct CauseRow {
    /// The user-facing error string.
    pub user_view: UserView,
    /// Root-cause label (Table I wording).
    pub cause: &'static str,
    /// Crash count.
    pub count: usize,
    /// Fraction of all crashes.
    pub proportion: f64,
    /// Fraction of this cause's crashes that were node-local.
    pub local_pct: f64,
}

impl OperationReport {
    /// Total downtime.
    pub fn downtime(&self) -> SimDuration {
        self.crashes.iter().map(|c| c.downtime()).sum()
    }

    /// Downtime as a fraction of the horizon.
    pub fn downtime_fraction(&self) -> f64 {
        self.downtime() / self.horizon
    }

    fn fraction_of(&self, f: impl Fn(&CrashRecord) -> SimDuration) -> f64 {
        self.crashes.iter().map(f).sum::<SimDuration>() / self.horizon
    }

    /// Post-checkpoint loss fraction (Table III row 1).
    pub fn post_checkpoint_fraction(&self) -> f64 {
        self.fraction_of(|c| c.post_checkpoint)
    }

    /// Detection fraction (Table III row 2).
    pub fn detection_fraction(&self) -> f64 {
        self.fraction_of(|c| c.detection)
    }

    /// Diagnosis & isolation fraction (Table III row 3).
    pub fn diagnosis_fraction(&self) -> f64 {
        self.fraction_of(|c| c.diagnosis)
    }

    /// Re-initialization fraction (Table III row 4).
    pub fn reinit_fraction(&self) -> f64 {
        self.fraction_of(|c| c.reinit)
    }

    /// Diagnosis & isolation broken down by cause, in Table III's sub-row
    /// order: ECC/NVLink, CUDA, CCL timeout, ACK timeout, unknown.
    pub fn diagnosis_by_cause(&self) -> [(&'static str, f64); 5] {
        let frac = |pred: &dyn Fn(FaultKind) -> bool| -> f64 {
            self.crashes
                .iter()
                .filter(|c| pred(c.kind))
                .map(|c| c.diagnosis)
                .sum::<SimDuration>()
                / self.horizon
        };
        [
            (
                "ECC/NVLink Error",
                frac(&|k| matches!(k, FaultKind::EccError | FaultKind::NvlinkError)),
            ),
            ("CUDA Error", frac(&|k| k == FaultKind::CudaError)),
            ("CCL Timeout", frac(&|k| k == FaultKind::NcclTimeout)),
            ("ACK Timeout", frac(&|k| k == FaultKind::AckTimeout)),
            ("Unknown", frac(&|k| k == FaultKind::NetworkError)),
        ]
    }

    /// The Table I census: crash causes, user view, proportion, locality.
    pub fn cause_census(&self) -> Vec<CauseRow> {
        let total = self.crashes.len().max(1) as f64;
        let row = |cause: &'static str, pred: &dyn Fn(FaultKind) -> bool| -> CauseRow {
            let matching: Vec<&CrashRecord> =
                self.crashes.iter().filter(|c| pred(c.kind)).collect();
            let count = matching.len();
            let local = matching.iter().filter(|c| c.local).count();
            let user_view = matching
                .first()
                .map(|c| c.user_view)
                .unwrap_or(UserView::NcclError);
            CauseRow {
                user_view,
                cause,
                count,
                proportion: count as f64 / total,
                local_pct: if count > 0 {
                    local as f64 / count as f64
                } else {
                    0.0
                },
            }
        };
        vec![
            row("CUDA Error", &|k| k == FaultKind::CudaError),
            row("ECC/NVLink Error", &|k| {
                matches!(k, FaultKind::EccError | FaultKind::NvlinkError)
            }),
            row("NCCL timeout", &|k| k == FaultKind::NcclTimeout),
            row("ACK timeout", &|k| k == FaultKind::AckTimeout),
            row("Others", &|k| k == FaultKind::NetworkError),
        ]
    }
}

/// Runs one operation horizon.
pub fn simulate_operation(cfg: &OperationConfig, seed: u64) -> OperationReport {
    let mut rng = DetRng::seed_from(seed);
    let rate_per_hour = cfg.rates.total_crash_rate(cfg.gpus, cfg.nodes);
    let weights = cfg.rates.crash_weights(cfg.gpus, cfg.nodes);

    let mut crashes = Vec::new();
    let mut wall = SimDuration::ZERO;
    let mut prod_since_ckpt = SimDuration::ZERO;

    if rate_per_hour <= 0.0 {
        return OperationReport {
            horizon: cfg.horizon,
            crashes,
        };
    }

    loop {
        // Next fault after this much *productive* time.
        let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / rate_per_hour) * 3600.0);
        // Checkpoints land every interval of productive time.
        let after_gap = prod_since_ckpt + gap;
        let interval = cfg.recovery.checkpoint_interval;
        let post_ckpt = if interval.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(after_gap.as_nanos() % interval.as_nanos().max(1))
        };
        wall += gap;
        if wall >= cfg.horizon {
            break;
        }

        let kind =
            FaultKind::CRASH_KINDS[rng.pick_weighted(&weights).expect("positive crash weights")];
        let local = rng.chance(kind.locality_probability());
        let detection = cfg.recovery.detection.sample(&mut rng);
        let diagnosis = cfg.recovery.diagnosis.sample(kind, local, &mut rng);
        let reinit = cfg.recovery.reinit;
        let record = CrashRecord {
            kind,
            local,
            user_view: kind.user_view(),
            at: SimTime::ZERO + wall,
            post_checkpoint: post_ckpt,
            detection,
            diagnosis,
            reinit,
        };
        wall += record.downtime();
        prod_since_ckpt = SimDuration::ZERO; // restart resumes from checkpoint
        crashes.push(record);
        if wall >= cfg.horizon {
            break;
        }
    }

    OperationReport {
        horizon: cfg.horizon,
        crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn june_downtime_is_around_thirty_percent() {
        let report = simulate_operation(&OperationConfig::june_2023_175b(), 42);
        let f = report.downtime_fraction();
        assert!(
            (0.20..=0.45).contains(&f),
            "June downtime fraction {f} (expected ≈0.31)"
        );
        // Diagnosis dominates, as in Table III.
        assert!(report.diagnosis_fraction() > report.post_checkpoint_fraction());
        assert!(report.diagnosis_fraction() > report.detection_fraction());
    }

    #[test]
    fn december_downtime_is_around_one_percent() {
        let report = simulate_operation(&OperationConfig::december_2023_175b(), 42);
        let f = report.downtime_fraction();
        assert!(
            (0.002..=0.035).contains(&f),
            "December downtime fraction {f} (expected ≈0.012)"
        );
    }

    #[test]
    fn improvement_is_more_than_tenfold() {
        let june = simulate_operation(&OperationConfig::june_2023_175b(), 7);
        let dec = simulate_operation(&OperationConfig::december_2023_175b(), 7);
        let ratio = june.downtime_fraction() / dec.downtime_fraction().max(1e-6);
        assert!(ratio > 10.0, "improvement ratio {ratio} (paper: ≈30×)");
    }

    #[test]
    fn census_matches_table_one_shape() {
        let report = simulate_operation(&OperationConfig::june_2023_4096(), 11);
        assert!(
            (20..=60).contains(&report.crashes.len()),
            "{} crashes",
            report.crashes.len()
        );
        let census = report.cause_census();
        assert_eq!(census.len(), 5);
        let total: f64 = census.iter().map(|r| r.proportion).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // GPU-internal causes are 100% local by construction.
        let cuda = &census[0];
        if cuda.count > 0 {
            assert_eq!(cuda.local_pct, 1.0);
        }
        // Majority of crashes local (paper: ~82.5%).
        let local_total: usize = report.crashes.iter().filter(|c| c.local).count();
        let frac = local_total as f64 / report.crashes.len() as f64;
        assert!(frac > 0.6, "local fraction {frac}");
    }

    #[test]
    fn downtime_components_sum() {
        let report = simulate_operation(&OperationConfig::june_2023_175b(), 3);
        let sum = report.post_checkpoint_fraction()
            + report.detection_fraction()
            + report.diagnosis_fraction()
            + report.reinit_fraction();
        assert!((sum - report.downtime_fraction()).abs() < 1e-9);
        let by_cause: f64 = report.diagnosis_by_cause().iter().map(|(_, f)| f).sum();
        assert!((by_cause - report.diagnosis_fraction()).abs() < 1e-9);
    }

    #[test]
    fn determinism() {
        let a = simulate_operation(&OperationConfig::june_2023_175b(), 9);
        let b = simulate_operation(&OperationConfig::june_2023_175b(), 9);
        assert_eq!(a.crashes, b.crashes);
    }

    #[test]
    fn zero_rates_mean_zero_downtime() {
        let mut cfg = OperationConfig::june_2023_175b();
        cfg.rates = FaultRates {
            cuda_per_gpu_hour: 0.0,
            ecc_per_gpu_hour: 0.0,
            nvlink_per_gpu_hour: 0.0,
            nccl_timeout_per_node_hour: 0.0,
            ack_timeout_per_node_hour: 0.0,
            network_per_job_hour: 0.0,
            slow_gpu_per_gpu_hour: 0.0,
            pcie_downgrade_per_gpu_hour: 0.0,
            nic_half_down_per_node_hour: 0.0,
            gc_pause_per_node_hour: 0.0,
            link_failure_per_link_hour: 0.0,
        };
        let report = simulate_operation(&cfg, 1);
        assert!(report.crashes.is_empty());
        assert_eq!(report.downtime_fraction(), 0.0);
    }
}
