//! 4D-hybrid parallel workloads: TP × PP × DP × EP traffic over one fabric.
//!
//! [`crate::iteration::TrainingJob`] models the paper's evaluation jobs,
//! whose only network traffic is the DP gradient ring. Thousands-of-GPU MoE
//! training produces a far more asymmetric matrix, and this module emits it
//! as four traffic families, all planned through the engine's
//! `run_concurrent_cached`/`select_batch` path so C4P path selection and the
//! plan cache face genuinely bursty, heterogeneous shapes:
//!
//! * **TP** — all-gathers confined to each node's NVLink domain (rails never
//!   see them, but they share NVLink with everything else);
//! * **PP** — point-to-point stage edges between adjacent pipeline stages
//!   (send/recv over the stage pair's rails);
//! * **DP** — cross-fabric allreduce rings, one per (stage, rail), striding
//!   the whole cluster;
//! * **EP** — expert-parallel all-to-alls inside slices of each DP group,
//!   with a hot-expert skew knob ([`EpSkew`]) that concentrates token bytes
//!   on one expert rank — the imbalance `c4d::smoothing`'s `LoadSmoother`
//!   window exists to keep out of the straggler detector.

use c4_collectives::{
    channel_pair, run_concurrent_cached, CollKind, CollectiveRequest, CommConfig, Communicator,
    EpSkew, PlanCache, QpWeightFn,
};
use c4_netsim::{DrainConfig, DrainSolverStats, PathSelector};
use c4_simcore::{DetRng, SimDuration, SimTime};
use c4_telemetry::{DataType, LoadSample};
use c4_topology::{NodeId, Topology};

/// Shape and message sizes of a 4D-hybrid job.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSpec {
    /// Display name.
    pub name: String,
    /// Tensor-parallel size (must divide GPUs/node; 1 disables TP traffic).
    pub tp: usize,
    /// Pipeline-parallel stages (must divide the node count; 1 disables PP
    /// traffic).
    pub pp: usize,
    /// Expert-parallel group size: ranks per all-to-all, sliced out of each
    /// DP ring (must divide nodes/stage; 1 disables EP traffic).
    pub ep: usize,
    /// Element type of every collective.
    pub dtype: DataType,
    /// All-gather elements per TP rank.
    pub tp_elems: u64,
    /// Send/recv elements per PP stage edge.
    pub pp_elems: u64,
    /// Allreduce elements per DP rank.
    pub dp_elems: u64,
    /// All-to-all elements per EP rank (its full dispatched token payload).
    pub ep_elems: u64,
    /// Hot-expert byte skew of the EP all-to-alls (rotate it per iteration
    /// with [`HybridJob::set_ep_skew`] to model shifting token routing).
    pub ep_skew: EpSkew,
}

impl HybridSpec {
    /// A Mixtral-style MoE shape: full-node TP, `pp` stages, `ep`-expert
    /// all-to-all groups, with message sizes balanced so no single family
    /// dwarfs the rest (TP 128 MiB, PP 64 MiB, DP 256 MiB, EP 64 MiB per
    /// rank at BF16).
    pub fn moe(tp: usize, pp: usize, ep: usize) -> Self {
        HybridSpec {
            name: format!("MoE TP{tp}/PP{pp}/EP{ep}"),
            tp,
            pp,
            ep,
            dtype: DataType::Bf16,
            tp_elems: 64 * 1024 * 1024,
            pp_elems: 32 * 1024 * 1024,
            dp_elems: 128 * 1024 * 1024,
            ep_elems: 32 * 1024 * 1024,
            ep_skew: EpSkew::default(),
        }
    }
}

/// One traffic family's outcome within an iteration.
#[derive(Debug, Clone)]
pub struct HybridPhase {
    /// The collective kind this phase ran.
    pub kind: CollKind,
    /// Communicators that participated.
    pub comms: usize,
    /// Phase duration (slowest collective, from phase start).
    pub duration: SimDuration,
    /// Mean bus bandwidth over the phase's collectives (Gbps); `None` on
    /// hang.
    pub busbw_mean_gbps: Option<f64>,
    /// True when any collective of the phase never completed.
    pub hung: bool,
}

/// What one hybrid iteration produced.
#[derive(Debug, Clone)]
pub struct HybridIterationReport {
    /// Completed phases in execution order (TP, PP, EP, DP; absent families
    /// are skipped).
    pub phases: Vec<HybridPhase>,
    /// Iteration wall time (phases run back to back).
    pub total: SimDuration,
    /// True when any phase hung.
    pub hung: bool,
    /// Per-EP-communicator, per-rank bytes *received* this iteration — the
    /// expert-load signal the EP-imbalance detection study feeds into
    /// `c4d`'s raw and smoothed straggler tests.
    pub ep_recv_bytes: Vec<Vec<u64>>,
    /// Drain-solver counters folded across the iteration's phases (each
    /// phase is one shared drain; counters add, high-water marks take the
    /// max).
    pub solver: DrainSolverStats,
}

impl HybridIterationReport {
    /// The phase outcome of one collective kind, if it ran.
    pub fn phase(&self, kind: CollKind) -> Option<&HybridPhase> {
        self.phases.iter().find(|p| p.kind == kind)
    }
}

/// A placed 4D-hybrid job: owns its four communicator families, plan cache
/// and virtual clock.
#[derive(Debug, Clone)]
pub struct HybridJob {
    spec: HybridSpec,
    nodes: Vec<NodeId>,
    tp_comms: Vec<Communicator>,
    pp_comms: Vec<Communicator>,
    dp_comms: Vec<Communicator>,
    ep_comms: Vec<Communicator>,
    seq: u64,
    now: SimTime,
    plan_cache: PlanCache,
    /// Drain configuration of every phase (noise, CNP, thread budget);
    /// `start`/`deadline` are overridden per phase.
    pub drain: DrainConfig,
    /// Give-up horizon per phase (hang modelling).
    pub comm_deadline: SimDuration,
}

impl HybridJob {
    /// Places the job on `nodes` (PP-stage-major order: stage `s` owns
    /// `nodes[s × nodes/pp .. (s+1) × nodes/pp]`) and derives all four
    /// communicator families:
    ///
    /// * TP: one all-gather group per (node, column) over `tp` adjacent
    ///   GPUs — NVLink-local;
    /// * PP: one send/recv pair per (stage edge, node position) joining the
    ///   full nodes of adjacent stages;
    /// * DP: one allreduce ring per (stage, GPU local index) spanning the
    ///   stage's nodes — rail-aligned, cross-fabric;
    /// * EP: each DP ring sliced into `ep`-rank all-to-all groups.
    ///
    /// `comm_base` namespaces communicator ids so concurrent jobs don't
    /// collide.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated shape rule.
    pub fn new(
        topo: &Topology,
        spec: HybridSpec,
        nodes: Vec<NodeId>,
        comm_base: u64,
    ) -> Result<Self, String> {
        let gpn = topo.config().gpus_per_node;
        if spec.tp == 0 || spec.pp == 0 || spec.ep == 0 {
            return Err("tp/pp/ep must be positive".into());
        }
        if !gpn.is_multiple_of(spec.tp) {
            return Err(format!("tp ({}) must divide GPUs/node ({gpn})", spec.tp));
        }
        if nodes.is_empty() || !nodes.len().is_multiple_of(spec.pp) {
            return Err(format!(
                "pp ({}) must divide the node count ({})",
                spec.pp,
                nodes.len()
            ));
        }
        let nodes_per_stage = nodes.len() / spec.pp;
        if !nodes_per_stage.is_multiple_of(spec.ep) {
            return Err(format!(
                "ep ({}) must divide nodes/stage ({nodes_per_stage})",
                spec.ep
            ));
        }
        for &n in &nodes {
            if !topo.is_node_healthy(n) {
                return Err(format!("node {n} is isolated"));
            }
        }

        let mut next_id = comm_base;
        let mut comm = |devices: Vec<_>| -> Result<Communicator, String> {
            let c = Communicator::new(next_id, devices, topo).map_err(|e| e.to_string())?;
            next_id += 1;
            Ok(c)
        };

        // TP: NVLink all-gather groups, `gpn / tp` columns per node.
        let mut tp_comms = Vec::new();
        if spec.tp > 1 {
            for &n in &nodes {
                for c in 0..gpn / spec.tp {
                    let devices = (0..spec.tp)
                        .map(|t| topo.gpu_at(n, c * spec.tp + t))
                        .collect();
                    tp_comms.push(comm(devices)?);
                }
            }
        }

        // PP: adjacent-stage node pairs at matching positions.
        let mut pp_comms = Vec::new();
        if spec.pp > 1 {
            for s in 0..spec.pp - 1 {
                for k in 0..nodes_per_stage {
                    let a = nodes[s * nodes_per_stage + k];
                    let b = nodes[(s + 1) * nodes_per_stage + k];
                    let mut devices: Vec<_> = topo.node(a).gpus.clone();
                    devices.extend_from_slice(&topo.node(b).gpus);
                    pp_comms.push(comm(devices)?);
                }
            }
        }

        // DP: rail-aligned rings across each stage's nodes; EP: `ep`-rank
        // slices of each ring.
        let mut dp_comms = Vec::new();
        let mut ep_comms = Vec::new();
        if nodes_per_stage > 1 {
            for s in 0..spec.pp {
                let stage_nodes = &nodes[s * nodes_per_stage..(s + 1) * nodes_per_stage];
                for g in 0..gpn {
                    let devices: Vec<_> = stage_nodes.iter().map(|&n| topo.gpu_at(n, g)).collect();
                    if spec.ep > 1 {
                        for slice in devices.chunks(spec.ep) {
                            ep_comms.push(comm(slice.to_vec())?);
                        }
                    }
                    dp_comms.push(comm(devices)?);
                }
            }
        }

        Ok(HybridJob {
            spec,
            nodes,
            tp_comms,
            pp_comms,
            dp_comms,
            ep_comms,
            seq: 0,
            now: SimTime::ZERO,
            plan_cache: PlanCache::new(),
            drain: DrainConfig::default(),
            comm_deadline: SimDuration::from_secs(120),
        })
    }

    /// The job spec.
    pub fn spec(&self) -> &HybridSpec {
        &self.spec
    }

    /// Assigned nodes, PP-stage-major.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// TP (NVLink all-gather) communicators.
    pub fn tp_comms(&self) -> &[Communicator] {
        &self.tp_comms
    }

    /// PP (stage-edge send/recv) communicators.
    pub fn pp_comms(&self) -> &[Communicator] {
        &self.pp_comms
    }

    /// DP (cross-fabric allreduce ring) communicators.
    pub fn dp_comms(&self) -> &[Communicator] {
        &self.dp_comms
    }

    /// EP (all-to-all) communicators.
    pub fn ep_comms(&self) -> &[Communicator] {
        &self.ep_comms
    }

    /// Virtual clock (advances across iterations).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Completed iteration count.
    pub fn iterations(&self) -> u64 {
        self.seq
    }

    /// The job's flow-plan cache (shared by all four families).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Mutable access to the plan cache (explicit invalidation).
    pub fn plan_cache_mut(&mut self) -> &mut PlanCache {
        &mut self.plan_cache
    }

    /// Points the EP all-to-alls at a (new) hot expert. Skew scales bytes,
    /// not routes, so cached plans survive the rotation.
    pub fn set_ep_skew(&mut self, skew: EpSkew) {
        self.spec.ep_skew = skew;
    }

    /// Flattens one iteration's per-expert received bytes into telemetry
    /// [`LoadSample`]s — one per (EP communicator, rank), stamped with the
    /// job clock after that iteration and `step` as the logical step. This
    /// is the source feeding the streaming EP-imbalance detectors
    /// (`c4_diagnosis::StreamSmoother`); samples are emitted
    /// communicator-major, rank-ascending — the canonical order windowed
    /// aggregation folds them in.
    pub fn ep_load_samples(&self, report: &HybridIterationReport, step: u64) -> Vec<LoadSample> {
        let at = self.now;
        self.ep_comms
            .iter()
            .zip(&report.ep_recv_bytes)
            .flat_map(|(comm, recv)| {
                let id = comm.id();
                recv.iter().enumerate().map(move |(rank, &b)| LoadSample {
                    comm: id,
                    rank: rank as u32,
                    step,
                    at,
                    value: b as f64,
                })
            })
            .collect()
    }

    /// Runs one iteration: the four phases back to back (TP all-gather,
    /// PP send/recv, EP all-to-all, DP allreduce), each a single shared
    /// drain over its family's collectives.
    pub fn run_iteration(
        &mut self,
        topo: &Topology,
        selector: &mut dyn PathSelector,
        qp_weights: Option<&QpWeightFn<'_>>,
        rng: &mut DetRng,
    ) -> HybridIterationReport {
        let start = self.now;
        let mut t = start;
        let mut phases = Vec::with_capacity(4);
        let mut ep_recv_bytes = Vec::new();
        let mut solver = DrainSolverStats::default();

        struct Phase<'a> {
            kind: CollKind,
            comms: &'a [Communicator],
            count: u64,
        }
        let order = [
            Phase {
                kind: CollKind::AllGather,
                comms: &self.tp_comms,
                count: self.spec.tp_elems,
            },
            Phase {
                kind: CollKind::SendRecv,
                comms: &self.pp_comms,
                count: self.spec.pp_elems,
            },
            Phase {
                kind: CollKind::AllToAll,
                comms: &self.ep_comms,
                count: self.spec.ep_elems,
            },
            Phase {
                kind: CollKind::AllReduce,
                comms: &self.dp_comms,
                count: self.spec.dp_elems,
            },
        ];

        let config = CommConfig {
            ep_skew: self.spec.ep_skew,
            ..CommConfig::default()
        };
        for phase in order {
            if phase.comms.is_empty() {
                continue;
            }
            let drain = DrainConfig {
                deadline: Some(t + self.comm_deadline),
                ..self.drain.clone()
            };
            let requests: Vec<CollectiveRequest<'_>> = phase
                .comms
                .iter()
                .map(|comm| CollectiveRequest {
                    comm,
                    seq: self.seq,
                    kind: phase.kind,
                    dtype: self.spec.dtype,
                    count: phase.count,
                    config,
                    start: t,
                    rank_ready: None,
                    drain: drain.clone(),
                })
                .collect();
            let results = run_concurrent_cached(
                topo,
                &requests,
                selector,
                qp_weights,
                rng,
                None,
                Some(&mut self.plan_cache),
            );

            // One shared drain per phase: every sub-result carries the same
            // per-drain counters, so fold the first rather than summing.
            if let Some(first) = results.first() {
                solver.merge(&first.report.solver);
            }
            let hung = results.iter().any(|r| r.hung());
            let end = results
                .iter()
                .filter_map(|r| r.finished)
                .max()
                .unwrap_or(t + self.comm_deadline);
            let busbws: Vec<f64> = results.iter().filter_map(|r| r.busbw_gbps()).collect();
            if phase.kind == CollKind::AllToAll {
                // Expert load per EP rank: bytes received, summed over the
                // pairwise flows by destination rank (pair decoded from the
                // flow channel).
                for (comm, res) in phase.comms.iter().zip(&results) {
                    let mut recv = vec![0u64; comm.nranks()];
                    for o in res.intra_outcomes.iter().chain(&res.qp_outcomes) {
                        let (_, dst) = channel_pair(o.key.channel);
                        recv[dst as usize] += o.bytes.as_bytes();
                    }
                    ep_recv_bytes.push(recv);
                }
            }
            phases.push(HybridPhase {
                kind: phase.kind,
                comms: phase.comms.len(),
                duration: end - t,
                busbw_mean_gbps: (!hung && !busbws.is_empty())
                    .then(|| busbws.iter().sum::<f64>() / busbws.len() as f64),
                hung,
            });
            t = end;
        }

        self.now = t;
        self.seq += 1;
        HybridIterationReport {
            total: t - start,
            hung: phases.iter().any(|p| p.hung),
            phases,
            ep_recv_bytes,
            solver,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_netsim::{EcmpSelector, RailLocalSelector};
    use c4_topology::ClosConfig;

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from_index).collect()
    }

    #[test]
    fn family_shapes_follow_the_decomposition() {
        let t = topo();
        // 16 nodes × 8 GPUs, TP8 / PP4 / EP2: 4 nodes per stage.
        let job = HybridJob::new(&t, HybridSpec::moe(8, 4, 2), nodes(16), 1000).unwrap();
        assert_eq!(job.tp_comms().len(), 16); // one column per node
        assert_eq!(job.pp_comms().len(), 3 * 4); // stage edges × positions
        assert_eq!(job.dp_comms().len(), 4 * 8); // stages × rails
        assert_eq!(job.ep_comms().len(), 4 * 8 * 2); // each DP ring → 2 slices
        for c in job.tp_comms() {
            assert!(c.is_single_node());
            assert_eq!(c.nranks(), 8);
        }
        for c in job.dp_comms() {
            assert_eq!(c.nranks(), 4);
            // Rail-aligned: every member shares one local index.
            let li = t.gpu(c.devices()[0]).local_index;
            assert!(c.devices().iter().all(|&g| t.gpu(g).local_index == li));
        }
        for c in job.ep_comms() {
            assert_eq!(c.nranks(), 2);
        }
        // All ids distinct.
        let mut ids: Vec<u64> = job
            .tp_comms()
            .iter()
            .chain(job.pp_comms())
            .chain(job.dp_comms())
            .chain(job.ep_comms())
            .map(|c| c.id())
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn shape_rules_are_enforced() {
        let t = topo();
        assert!(HybridJob::new(&t, HybridSpec::moe(3, 2, 2), nodes(16), 0).is_err());
        assert!(HybridJob::new(&t, HybridSpec::moe(8, 3, 2), nodes(16), 0).is_err());
        assert!(HybridJob::new(&t, HybridSpec::moe(8, 2, 3), nodes(16), 0).is_err());
        let mut spec = HybridSpec::moe(8, 2, 2);
        spec.ep = 0;
        assert!(HybridJob::new(&t, spec, nodes(16), 0).is_err());
    }

    #[test]
    fn iteration_runs_all_four_phases() {
        let t = topo();
        let mut job = HybridJob::new(&t, HybridSpec::moe(8, 4, 2), nodes(16), 1).unwrap();
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(1);
        let r = job.run_iteration(&t, &mut sel, None, &mut rng);
        assert!(!r.hung);
        assert_eq!(r.phases.len(), 4);
        let kinds: Vec<CollKind> = r.phases.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CollKind::AllGather,
                CollKind::SendRecv,
                CollKind::AllToAll,
                CollKind::AllReduce
            ]
        );
        for p in &r.phases {
            assert!(p.duration > SimDuration::ZERO, "{} phase", p.kind);
            assert!(p.busbw_mean_gbps.unwrap() > 0.0);
        }
        assert_eq!(r.ep_recv_bytes.len(), job.ep_comms().len());
        assert_eq!(job.iterations(), 1);
        assert_eq!(job.now(), SimTime::ZERO + r.total);
    }

    #[test]
    fn hot_expert_skew_shifts_received_bytes() {
        let t = topo();
        // EP4 slices so a hot expert stands out among 4 ranks.
        let mut job = HybridJob::new(&t, HybridSpec::moe(8, 2, 4), nodes(16), 1).unwrap();
        job.set_ep_skew(EpSkew::hot(2, 4.0));
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(2);
        let r = job.run_iteration(&t, &mut sel, None, &mut rng);
        for recv in &r.ep_recv_bytes {
            let hot = recv[2] as f64;
            for (rank, &b) in recv.iter().enumerate() {
                if rank != 2 {
                    assert!(
                        hot / b as f64 > 2.5,
                        "hot rank should draw ≈4× cold: {hot} vs {b}"
                    );
                }
            }
        }
        // Bytes are conserved: each of the 4 ranks sends its full message.
        let msg = job.spec().ep_elems * 2; // BF16
        for recv in &r.ep_recv_bytes {
            let total: u64 = recv.iter().sum();
            let expect = 4 * msg;
            assert!(
                (total as f64 - expect as f64).abs() / (expect as f64) < 1e-6,
                "total {total} vs {expect}"
            );
        }
    }

    #[test]
    fn ep_load_samples_flatten_received_bytes_in_canonical_order() {
        let t = topo();
        let mut job = HybridJob::new(&t, HybridSpec::moe(8, 2, 4), nodes(16), 1).unwrap();
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(2);
        let r = job.run_iteration(&t, &mut sel, None, &mut rng);
        let samples = job.ep_load_samples(&r, 0);
        assert_eq!(samples.len(), job.ep_comms().len() * 4);
        // Communicator-major, rank-ascending; values mirror ep_recv_bytes.
        let first = job.ep_comms()[0].id();
        assert!(samples[..4].iter().all(|s| s.comm == first));
        assert_eq!(samples[1].rank, 1);
        assert_eq!(samples[0].value, r.ep_recv_bytes[0][0] as f64);
        assert!(samples.iter().all(|s| s.at == job.now() && s.step == 0));
    }

    #[test]
    fn plan_cache_serves_every_family_across_iterations() {
        let t = topo();
        let mut job = HybridJob::new(&t, HybridSpec::moe(8, 4, 2), nodes(16), 1).unwrap();
        let families = job.tp_comms().len()
            + job.pp_comms().len()
            + job.dp_comms().len()
            + job.ep_comms().len();
        let mut sel = EcmpSelector::new(3);
        let mut rng = DetRng::seed_from(3);
        job.run_iteration(&t, &mut sel, None, &mut rng);
        assert_eq!(job.plan_cache().misses(), families as u64);
        assert_eq!(job.plan_cache().hits(), 0);
        // A skew rotation must NOT invalidate cached plans.
        job.set_ep_skew(EpSkew::hot(0, 3.0));
        job.run_iteration(&t, &mut sel, None, &mut rng);
        assert_eq!(job.plan_cache().misses(), families as u64, "all reused");
        assert_eq!(job.plan_cache().hits(), families as u64);
    }
}
