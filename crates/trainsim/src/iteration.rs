//! BSP iteration execution: compute phase (with perturbations) followed by
//! concurrent DP gradient synchronization through the network simulator.

use c4_collectives::{
    run_concurrent_cached, CollKind, CollectiveRequest, CommConfig, Communicator, PlanCache,
    QpWeightFn,
};
use c4_faults::ComputePerturbation;
use c4_netsim::{DrainConfig, PathSelector};
use c4_simcore::{DetRng, ParallelPolicy, SimDuration, SimTime};
use c4_telemetry::{CommRecord, WorkerTelemetry};
use c4_topology::Topology;

use crate::job::{JobSpec, ParallelLayout};

/// What one iteration produced.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Longest per-rank compute time this iteration (GA micro-batches).
    pub compute: SimDuration,
    /// Gradient-sync duration (slowest DP group, from last-rank-ready).
    pub comm: SimDuration,
    /// Communication not hidden by overlap.
    pub exposed_comm: SimDuration,
    /// Iteration wall time: compute + exposed communication.
    pub total: SimDuration,
    /// Minimum bus bandwidth across DP groups (Gbps); `None` on hang.
    pub busbw_min_gbps: Option<f64>,
    /// Mean bus bandwidth across DP groups (Gbps); `None` on hang.
    pub busbw_mean_gbps: Option<f64>,
    /// True when any DP group's collective never completed.
    pub hung: bool,
}

impl IterationReport {
    /// Samples/s this iteration sustains for the given global batch.
    pub fn samples_per_sec(&self, global_batch: usize) -> f64 {
        let t = self.total.as_secs_f64();
        if t <= 0.0 || self.hung {
            0.0
        } else {
            global_batch as f64 / t
        }
    }
}

/// A placed, running job: owns its communicators, sequence numbers and
/// virtual clock.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    spec: JobSpec,
    layout: ParallelLayout,
    comms: Vec<Communicator>,
    seq: u64,
    now: SimTime,
    comm_config: CommConfig,
    /// Flow-plan cache reused across the iteration × collective loop: BSP
    /// iterations re-issue identical gradient syncs, so the per-DP-group
    /// ring plans and QP paths are built once per (incarnation, selector
    /// state, topology version) instead of per iteration.
    plan_cache: PlanCache,
    /// Give-up horizon for a single gradient sync (hang modelling).
    pub comm_deadline: SimDuration,
    /// Thread budget for the network layers under this job (max-min
    /// component re-solves, flow-plan route assembly). Results are
    /// bit-identical at any thread count; defaults to the `C4_THREADS`
    /// environment selection.
    pub parallel: ParallelPolicy,
}

impl TrainingJob {
    /// Creates the job's DP communicators over its layout.
    ///
    /// `comm_base` namespaces communicator ids so concurrent jobs don't
    /// collide.
    ///
    /// # Panics
    ///
    /// Panics if a DP group is invalid (empty/duplicate devices) — the
    /// layout constructor prevents this.
    pub fn new(topo: &Topology, spec: JobSpec, layout: ParallelLayout, comm_base: u64) -> Self {
        let comms: Vec<Communicator> = layout
            .dp_groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                Communicator::new(comm_base + i as u64, g.clone(), topo)
                    .expect("layout produces valid groups")
            })
            .collect();
        TrainingJob {
            spec,
            layout,
            comms,
            seq: 0,
            now: SimTime::ZERO,
            comm_config: CommConfig::default(),
            plan_cache: PlanCache::new(),
            comm_deadline: SimDuration::from_secs(120),
            parallel: ParallelPolicy::default(),
        }
    }

    /// The job spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The job layout.
    pub fn layout(&self) -> &ParallelLayout {
        &self.layout
    }

    /// The DP communicators.
    pub fn comms(&self) -> &[Communicator] {
        &self.comms
    }

    /// Virtual clock (advances across iterations).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Completed iteration count.
    pub fn iterations(&self) -> u64 {
        self.seq
    }

    /// Registers the job's communicators into per-worker telemetry stores.
    pub fn register_telemetry(&self, topo: &Topology, tel: &mut [WorkerTelemetry]) {
        for comm in &self.comms {
            for &g in comm.devices() {
                tel[g.index()].record_comm(CommRecord {
                    comm: comm.id(),
                    devices: comm.devices().to_vec(),
                    created: self.now,
                });
            }
        }
        let _ = topo;
    }

    /// The job's flow-plan cache (hit/miss statistics, explicit
    /// invalidation after steering events the topology cannot see).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Mutable access to the plan cache (e.g. `clear()` after an external
    /// steering decision).
    pub fn plan_cache_mut(&mut self) -> &mut PlanCache {
        &mut self.plan_cache
    }

    /// Bumps communicator incarnations (restart after a crash) so ECMP
    /// re-hashes and C4P re-allocates; cached plans of the old incarnation
    /// are dropped.
    pub fn restart(&mut self) {
        for c in &mut self.comms {
            c.bump_incarnation();
            self.plan_cache.invalidate_comm(c.id());
        }
    }

    /// Advances the job's virtual clock without running an iteration.
    ///
    /// Fleet controllers charge recovery downtime (detection, steering
    /// turnaround, re-init, redone work) to the job's clock this way, and
    /// also fast-forward over analytically-extrapolated BSP iterations so
    /// telemetry and drain deadlines of the next live iteration carry the
    /// correct wall-clock offset.
    pub fn advance_clock(&mut self, by: SimDuration) {
        self.now += by;
    }

    /// Replaces the job's layout after a steering decision (node swapped
    /// out, whole-job re-placement, or DP shrink).
    ///
    /// The DP communicators are rebuilt over the new layout's groups with
    /// their **same ids** (rank membership changed, not job identity) and
    /// a bumped incarnation, and every old plan is dropped from the cache
    /// — so the next iteration re-plans from scratch and a cached route
    /// through the removed node can never be served. The virtual clock,
    /// iteration count and cache statistics survive.
    ///
    /// # Panics
    ///
    /// Panics if a DP group of the new layout is invalid (empty/duplicate
    /// devices) — the layout constructor prevents this.
    pub fn replace_layout(&mut self, topo: &Topology, spec: JobSpec, layout: ParallelLayout) {
        let comm_base = self.comms.first().map_or(0, |c| c.id());
        let next_inc = self
            .comms
            .iter()
            .map(|c| c.incarnation())
            .max()
            .unwrap_or(0)
            + 1;
        for c in &self.comms {
            self.plan_cache.invalidate_comm(c.id());
        }
        self.comms = layout
            .dp_groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                Communicator::new(comm_base + i as u64, g.clone(), topo)
                    .expect("layout produces valid groups")
                    .with_incarnation(next_inc)
            })
            .collect();
        self.spec = spec;
        self.layout = layout;
    }

    /// Runs one BSP iteration.
    ///
    /// Per-rank compute = GA × micro-batch time, stretched by matching
    /// `perturbations` and ±1 % jitter; then all DP groups launch their
    /// gradient allreduce (ZeRO jobs: reduce-scatter + allgather, which
    /// moves the same bytes) concurrently through the network.
    pub fn run_iteration(
        &mut self,
        topo: &Topology,
        selector: &mut dyn PathSelector,
        qp_weights: Option<&QpWeightFn<'_>>,
        rng: &mut DetRng,
        perturbations: &[ComputePerturbation],
        telemetry: Option<&mut [WorkerTelemetry]>,
    ) -> IterationReport {
        let start = self.now;
        let base = self.spec.compute_per_iteration();

        // Per-communicator rank-ready times.
        let mut ready_per_comm: Vec<Vec<SimTime>> = Vec::with_capacity(self.comms.len());
        let mut max_compute = SimDuration::ZERO;
        for comm in &self.comms {
            let mut ready = Vec::with_capacity(comm.nranks());
            for &gpu in comm.devices() {
                let mut compute = base;
                for p in perturbations.iter().filter(|p| p.gpu == gpu) {
                    compute = p.perturb(compute);
                }
                let jitter = rng.normal_with(1.0, 0.01).clamp(0.9, 1.1);
                compute = compute * jitter;
                max_compute = max_compute.max(compute);
                ready.push(start + compute);
            }
            ready_per_comm.push(ready);
        }

        let drain = DrainConfig {
            deadline: Some(start + max_compute + self.comm_deadline),
            parallel: self.parallel,
            ..DrainConfig::default()
        };
        let requests: Vec<CollectiveRequest<'_>> = self
            .comms
            .iter()
            .zip(&ready_per_comm)
            .map(|(comm, ready)| CollectiveRequest {
                comm,
                seq: self.seq,
                kind: CollKind::AllReduce,
                dtype: self.spec.grad_dtype,
                count: self.spec.grad_elems_per_rank(),
                config: self.comm_config,
                start,
                rank_ready: Some(ready),
                drain: drain.clone(),
            })
            .collect();

        let results = run_concurrent_cached(
            topo,
            &requests,
            selector,
            qp_weights,
            rng,
            telemetry,
            Some(&mut self.plan_cache),
        );

        let hung = results.iter().any(|r| r.hung());
        let comm = results
            .iter()
            .filter_map(|r| r.duration())
            .max()
            .unwrap_or(SimDuration::ZERO);
        let busbws: Vec<f64> = results.iter().filter_map(|r| r.busbw_gbps()).collect();
        let (busbw_min, busbw_mean) = if hung || busbws.is_empty() {
            (None, None)
        } else {
            (
                Some(busbws.iter().copied().fold(f64::INFINITY, f64::min)),
                Some(busbws.iter().sum::<f64>() / busbws.len() as f64),
            )
        };

        let exposed = comm * (1.0 - self.spec.overlap.clamp(0.0, 0.95));
        let total = max_compute + exposed;
        self.now = start + total;
        self.seq += 1;

        IterationReport {
            compute: max_compute,
            comm,
            exposed_comm: exposed,
            total,
            busbw_min_gbps: busbw_min,
            busbw_mean_gbps: busbw_mean,
            hung,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_netsim::{EcmpSelector, RailLocalSelector};
    use c4_topology::{ClosConfig, NodeId, PortSide};

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn job(t: &Topology) -> TrainingJob {
        let spec = JobSpec::gpt22b_tp8_dp16();
        let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
        let layout = ParallelLayout::place(t, &spec, nodes).unwrap();
        TrainingJob::new(t, spec, layout, 100)
    }

    #[test]
    fn iteration_advances_clock_and_seq() {
        let t = topo();
        let mut j = job(&t);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(1);
        let r = j.run_iteration(&t, &mut sel, None, &mut rng, &[], None);
        assert!(!r.hung);
        assert!(r.total > r.compute);
        assert_eq!(j.iterations(), 1);
        assert_eq!(j.now(), SimTime::ZERO + r.total);
        assert!(r.samples_per_sec(128) > 0.0);
    }

    #[test]
    fn balanced_paths_beat_ecmp() {
        let t = topo();
        let mut rng = DetRng::seed_from(2);
        let mut j1 = job(&t);
        let mut good = RailLocalSelector::new();
        let r_good = j1.run_iteration(&t, &mut good, None, &mut rng, &[], None);
        let mut j2 = job(&t);
        let mut bad = EcmpSelector::new(7);
        let r_bad = j2.run_iteration(&t, &mut bad, None, &mut rng, &[], None);
        assert!(
            r_bad.total > r_good.total,
            "ECMP {} should be slower than balanced {}",
            r_bad.total,
            r_good.total
        );
        assert!(r_good.busbw_min_gbps.unwrap() > r_bad.busbw_min_gbps.unwrap());
    }

    #[test]
    fn slow_gpu_stretches_compute() {
        let t = topo();
        let mut rng = DetRng::seed_from(3);
        let mut j = job(&t);
        let victim = t.gpu_at(NodeId::from_index(4), 2);
        let perturb = [ComputePerturbation::slow_gpu(victim, 2.0)];
        let mut sel = RailLocalSelector::new();
        let r = j.run_iteration(&t, &mut sel, None, &mut rng, &perturb, None);
        let base = j.spec().compute_per_iteration();
        assert!(
            r.compute > base * 1.8,
            "straggler must dominate compute: {} vs base {base}",
            r.compute
        );
    }

    #[test]
    fn dead_port_hangs_iteration() {
        let mut t = topo();
        let g = t.gpu_at(NodeId::from_index(0), 0);
        let p = t.port_of_gpu(g, PortSide::Left);
        let up = t.port(p).host_up;
        t.link_mut(up).set_up(false);
        let mut j = job(&t);
        j.comm_deadline = SimDuration::from_secs(10);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(4);
        let r = j.run_iteration(&t, &mut sel, None, &mut rng, &[], None);
        assert!(r.hung);
        assert_eq!(r.busbw_min_gbps, None);
        assert_eq!(r.samples_per_sec(128), 0.0);
    }

    #[test]
    fn telemetry_flows_through_iterations() {
        let t = topo();
        let mut j = job(&t);
        let mut tel: Vec<WorkerTelemetry> = t
            .gpus()
            .iter()
            .map(|g| WorkerTelemetry::new(g.id))
            .collect();
        j.register_telemetry(&t, &mut tel);
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(5);
        j.run_iteration(&t, &mut sel, None, &mut rng, &[], Some(&mut tel));
        j.run_iteration(&t, &mut sel, None, &mut rng, &[], Some(&mut tel));
        // Every GPU belongs to exactly one DP group → 2 coll records.
        for g in t.gpus() {
            assert_eq!(tel[g.id.index()].colls().len(), 2);
            assert_eq!(tel[g.id.index()].comms().len(), 1);
            assert_eq!(tel[g.id.index()].ranks().len(), 2);
        }
    }

    #[test]
    fn restart_bumps_incarnations() {
        let t = topo();
        let mut j = job(&t);
        assert!(j.comms().iter().all(|c| c.incarnation() == 0));
        j.restart();
        assert!(j.comms().iter().all(|c| c.incarnation() == 1));
    }

    #[test]
    fn plan_cache_reused_across_iterations_and_dropped_on_restart() {
        let t = topo();
        let mut j = job(&t);
        let groups = j.comms().len() as u64;
        let mut sel = EcmpSelector::new(5);
        let mut rng = DetRng::seed_from(6);
        j.run_iteration(&t, &mut sel, None, &mut rng, &[], None);
        assert_eq!(j.plan_cache().misses(), groups, "first iteration builds");
        assert_eq!(j.plan_cache().hits(), 0);
        j.run_iteration(&t, &mut sel, None, &mut rng, &[], None);
        j.run_iteration(&t, &mut sel, None, &mut rng, &[], None);
        assert_eq!(j.plan_cache().misses(), groups, "plans reused");
        assert_eq!(j.plan_cache().hits(), 2 * groups);
        // A restart bumps incarnations: old plans are gone and the next
        // iteration re-plans.
        j.restart();
        assert!(j.plan_cache().is_empty());
        j.run_iteration(&t, &mut sel, None, &mut rng, &[], None);
        assert_eq!(j.plan_cache().misses(), 2 * groups);
    }
}
