//! Job specifications and parallel layouts.

use c4_simcore::{ByteSize, SimDuration};
use c4_telemetry::DataType;
use c4_topology::{GpuId, NodeId, Topology};

/// A training job's shape and compute model.
///
/// Communication that C4P affects (inter-node DP gradient sync) is simulated
/// through the network; TP collectives (NVLink-local) and PP activations are
/// folded into the calibrated per-micro-batch compute time, as their cost is
/// unchanged by C4P on the paper's testbed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display name.
    pub name: String,
    /// Model parameters.
    pub params: u64,
    /// Gradient element type (paper jobs train in BF16).
    pub grad_dtype: DataType,
    /// Tensor-parallel size (within a node; must divide GPUs/node).
    pub tp: usize,
    /// Pipeline-parallel size (stages are contiguous node blocks).
    pub pp: usize,
    /// Data-parallel size.
    pub dp: usize,
    /// Gradient-accumulation micro-batches per iteration.
    pub ga: usize,
    /// ZeRO optimizer sharding (DeepSpeed): gradients sync as
    /// reduce-scatter + allgather — same total bytes on the wire as an
    /// allreduce ring, so the network model treats them identically.
    pub zero: bool,
    /// Samples per global batch (for samples/s accounting).
    pub global_batch: usize,
    /// Forward+backward time of one micro-batch (includes TP/PP comm).
    pub micro_compute: SimDuration,
    /// Fraction of DP communication overlapped with backward compute.
    pub overlap: f64,
}

impl JobSpec {
    /// Total GPUs required.
    pub fn gpus(&self) -> usize {
        self.tp * self.pp * self.dp
    }

    /// Gradient bytes each DP rank contributes per sync
    /// (`params × dtype / (tp × pp)`).
    pub fn grad_bytes_per_rank(&self) -> ByteSize {
        ByteSize::from_bytes(
            self.params * self.grad_dtype.size_bytes() / (self.tp * self.pp) as u64,
        )
    }

    /// Gradient element count per DP rank.
    pub fn grad_elems_per_rank(&self) -> u64 {
        self.params / (self.tp * self.pp) as u64
    }

    /// Nominal compute time of one iteration (GA micro-batches).
    pub fn compute_per_iteration(&self) -> SimDuration {
        self.micro_compute * self.ga as u64
    }

    /// Fig 14 Job1: GPT-22B on Megatron, TP=8, DP=16 (128 GPUs). The paper
    /// reports 74.82 samples/s baseline with >30 % of each iteration spent
    /// in communication.
    pub fn gpt22b_tp8_dp16() -> Self {
        JobSpec {
            name: "GPT-22B TP8/DP16 (Megatron)".into(),
            params: 22_000_000_000,
            grad_dtype: DataType::Bf16,
            tp: 8,
            pp: 1,
            dp: 16,
            ga: 1,
            zero: false,
            global_batch: 78,
            micro_compute: SimDuration::from_millis(750),
            overlap: 0.3,
        }
    }

    /// Fig 14 Job2: Llama-7B on DeepSpeed with ZeRO, pure DP over 128 GPUs.
    /// Paper baseline: 156.59 samples/s.
    pub fn llama7b_dp128_zero() -> Self {
        JobSpec {
            name: "Llama-7B DP128+ZeRO (DeepSpeed)".into(),
            params: 7_000_000_000,
            grad_dtype: DataType::Bf16,
            tp: 1,
            pp: 1,
            dp: 128,
            ga: 1,
            zero: true,
            global_batch: 440,
            micro_compute: SimDuration::from_millis(2030),
            overlap: 0.3,
        }
    }

    /// Fig 14 Job3: GPT-175B on Megatron, TP=8, PP=8, GA=16 → 2 DP groups.
    /// The 16× gradient accumulation amortizes DP sync, so C4P gains little.
    pub fn gpt175b_tp8_pp8_ga16() -> Self {
        JobSpec {
            name: "GPT-175B TP8/PP8/GA16 (Megatron)".into(),
            params: 175_000_000_000,
            grad_dtype: DataType::Bf16,
            tp: 8,
            pp: 8,
            dp: 2,
            ga: 16,
            zero: false,
            global_batch: 64,
            micro_compute: SimDuration::from_millis(210),
            overlap: 0.3,
        }
    }

    /// Fig 3 family: the 22-billion-parameter GPT scaled over DP (weak
    /// scaling: global batch grows with DP).
    pub fn gpt22b_scaling(dp: usize) -> Self {
        JobSpec {
            name: format!("GPT-22B TP8/DP{dp}"),
            global_batch: 8 * dp,
            dp,
            micro_compute: SimDuration::from_millis(550),
            overlap: 0.0,
            ..Self::gpt22b_tp8_dp16()
        }
    }
}

/// The mapping of a job's ranks onto cluster GPUs, and its DP groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelLayout {
    /// Nodes assigned to the job, PP-stage order.
    pub nodes: Vec<NodeId>,
    /// DP communicator member lists (each synchronizes one gradient shard).
    pub dp_groups: Vec<Vec<GpuId>>,
}

impl ParallelLayout {
    /// Places a job on `nodes` and derives its DP groups.
    ///
    /// Layout rules (covering the paper's evaluation jobs):
    /// * pure DP (`tp == pp == 1`): one DP group containing every GPU;
    /// * otherwise `tp` must divide GPUs/node, `pp` must divide the node
    ///   count, and `dp` must equal `nodes/pp × gpus_per_node/tp`; the DP
    ///   group for (stage, column, tp-rank) spans the stage's nodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated rule.
    pub fn place(topo: &Topology, spec: &JobSpec, nodes: Vec<NodeId>) -> Result<Self, String> {
        let gpn = topo.config().gpus_per_node;
        let need_nodes = spec.gpus().div_ceil(gpn);
        if nodes.len() != need_nodes {
            return Err(format!(
                "job needs {} nodes ({} GPUs / {gpn} per node), got {}",
                need_nodes,
                spec.gpus(),
                nodes.len()
            ));
        }
        for &n in &nodes {
            if !topo.is_node_healthy(n) {
                return Err(format!("node {n} is isolated"));
            }
        }

        if spec.tp == 1 && spec.pp == 1 {
            if spec.dp != nodes.len() * gpn {
                return Err(format!(
                    "pure-DP job: dp ({}) must equal total GPUs ({})",
                    spec.dp,
                    nodes.len() * gpn
                ));
            }
            let all: Vec<GpuId> = nodes
                .iter()
                .flat_map(|&n| topo.node(n).gpus.clone())
                .collect();
            return Ok(ParallelLayout {
                nodes,
                dp_groups: vec![all],
            });
        }

        if !gpn.is_multiple_of(spec.tp) {
            return Err(format!("tp ({}) must divide GPUs/node ({gpn})", spec.tp));
        }
        if !nodes.len().is_multiple_of(spec.pp) {
            return Err(format!(
                "pp ({}) must divide the node count ({})",
                spec.pp,
                nodes.len()
            ));
        }
        let columns = gpn / spec.tp;
        let nodes_per_stage = nodes.len() / spec.pp;
        if spec.dp != nodes_per_stage * columns {
            return Err(format!(
                "dp ({}) must equal nodes/stage × columns ({nodes_per_stage} × {columns})",
                spec.dp
            ));
        }

        let mut dp_groups = Vec::with_capacity(spec.pp * columns * spec.tp);
        for stage in 0..spec.pp {
            let stage_nodes = &nodes[stage * nodes_per_stage..(stage + 1) * nodes_per_stage];
            for t in 0..spec.tp {
                // One DP group per tp-rank per stage; members span the
                // stage's nodes and columns.
                let mut members = Vec::with_capacity(spec.dp);
                for &n in stage_nodes {
                    for c in 0..columns {
                        members.push(topo.gpu_at(n, c * spec.tp + t));
                    }
                }
                dp_groups.push(members);
            }
        }
        Ok(ParallelLayout { nodes, dp_groups })
    }

    /// All GPUs of the job, node-major.
    pub fn gpus(&self, topo: &Topology) -> Vec<GpuId> {
        self.nodes
            .iter()
            .flat_map(|&n| topo.node(n).gpus.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_topology::ClosConfig;

    fn topo() -> Topology {
        Topology::build(&ClosConfig::testbed_128())
    }

    fn first_nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from_index).collect()
    }

    #[test]
    fn presets_have_consistent_shapes() {
        for spec in [
            JobSpec::gpt22b_tp8_dp16(),
            JobSpec::llama7b_dp128_zero(),
            JobSpec::gpt175b_tp8_pp8_ga16(),
        ] {
            assert_eq!(spec.gpus(), 128, "{}", spec.name);
        }
        let j1 = JobSpec::gpt22b_tp8_dp16();
        // 22e9 × 2 bytes / 8 = 5.5 GB per DP rank.
        assert_eq!(j1.grad_bytes_per_rank().as_bytes(), 5_500_000_000);
        let j3 = JobSpec::gpt175b_tp8_pp8_ga16();
        assert_eq!(
            j3.compute_per_iteration(),
            SimDuration::from_millis(210 * 16)
        );
    }

    #[test]
    fn megatron_layout_one_group_per_rail() {
        let t = topo();
        let spec = JobSpec::gpt22b_tp8_dp16();
        let layout = ParallelLayout::place(&t, &spec, first_nodes(16)).unwrap();
        assert_eq!(layout.dp_groups.len(), 8); // pp=1 × tp=8
        for (tp_idx, group) in layout.dp_groups.iter().enumerate() {
            assert_eq!(group.len(), 16);
            // Every member is the tp_idx-th GPU of its node → one rail.
            for &g in group {
                assert_eq!(t.gpu(g).local_index, tp_idx);
            }
        }
    }

    #[test]
    fn pure_dp_layout_is_one_big_group() {
        let t = topo();
        let spec = JobSpec::llama7b_dp128_zero();
        let layout = ParallelLayout::place(&t, &spec, first_nodes(16)).unwrap();
        assert_eq!(layout.dp_groups.len(), 1);
        assert_eq!(layout.dp_groups[0].len(), 128);
    }

    #[test]
    fn pp_layout_stages_are_node_blocks() {
        let t = topo();
        let spec = JobSpec::gpt175b_tp8_pp8_ga16();
        let layout = ParallelLayout::place(&t, &spec, first_nodes(16)).unwrap();
        assert_eq!(layout.dp_groups.len(), 8 * 8); // pp × tp
        for group in &layout.dp_groups {
            assert_eq!(group.len(), 2); // dp = 2
                                        // Both members on adjacent nodes of one stage.
            let n0 = t.gpu(group[0]).node.index();
            let n1 = t.gpu(group[1]).node.index();
            assert_eq!(n0 / 2, n1 / 2, "stage block");
            assert_ne!(n0, n1);
        }
    }

    #[test]
    fn placement_rejects_bad_shapes() {
        let t = topo();
        let spec = JobSpec::gpt22b_tp8_dp16();
        assert!(ParallelLayout::place(&t, &spec, first_nodes(15)).is_err());

        let mut bad = spec.clone();
        bad.tp = 3;
        bad.dp = 16; // 3 doesn't divide 8
                     // gpus = 3×16 = 48 → 6 nodes
        assert!(ParallelLayout::place(&t, &bad, first_nodes(6)).is_err());

        // Pure-DP size that doesn't fill its nodes: 100 ranks on 13 nodes
        // (104 GPUs) violates dp == total-GPUs.
        let mut bad_dp = JobSpec::llama7b_dp128_zero();
        bad_dp.dp = 100;
        assert!(ParallelLayout::place(&t, &bad_dp, first_nodes(13)).is_err());
    }

    #[test]
    fn placement_rejects_isolated_nodes() {
        let mut t = topo();
        t.set_node_healthy(NodeId::from_index(3), false);
        let spec = JobSpec::gpt22b_tp8_dp16();
        let err = ParallelLayout::place(&t, &spec, first_nodes(16)).unwrap_err();
        assert!(err.contains("isolated"), "{err}");
    }

    #[test]
    fn scaling_family_grows_batch() {
        let s = JobSpec::gpt22b_scaling(64);
        assert_eq!(s.dp, 64);
        assert_eq!(s.global_batch, 512);
        assert_eq!(s.gpus(), 512);
    }
}
