//! # c4-trainsim
//!
//! Parallel-training job simulator: BSP iterations over the collective
//! engine, parallelism layouts (TP/PP/DP with gradient accumulation and
//! ZeRO), and the month-scale crash/recovery simulation behind the paper's
//! Table I and Table III.
//!
//! Three layers:
//!
//! * [`job::JobSpec`] + [`job::ParallelLayout`] — the workload shape: model
//!   size, TP/PP/DP split, gradient accumulation, per-micro-batch compute
//!   time, overlap. Presets encode the paper's evaluation jobs (GPT-22B
//!   TP8/DP16, Llama-7B pure-DP ZeRO, GPT-175B TP8/PP8/GA16, and the
//!   Fig 3 scaling family).
//! * [`hybrid::HybridJob`] — the 4D-hybrid workload layer: TP all-gathers
//!   on NVLink rails, PP stage-edge send/recv, DP cross-fabric allreduce
//!   rings and EP all-to-alls with a hot-expert skew knob, run as four
//!   back-to-back phases over one shared plan cache.
//! * [`iteration::TrainingJob`] — runs BSP iterations: per-rank compute with
//!   perturbations (stragglers, GC pauses), concurrent DP gradient
//!   synchronization through the network simulator, exposed-communication
//!   accounting, hang propagation.
//! * [`recovery`] / [`downtime`] — the error-recovery state machine of
//!   Fig 2: post-checkpoint loss, detection, diagnosis & isolation,
//!   re-initialization, with June-2023 (manual ops) and December-2023
//!   (C4D + frequent checkpointing) parameter presets; month-long operation
//!   runs produce the Table III downtime ledger and Table I crash census.

pub mod downtime;
pub mod hybrid;
pub mod iteration;
pub mod job;
pub mod recovery;

pub use downtime::{simulate_operation, CrashRecord, OperationConfig, OperationReport};
pub use hybrid::{HybridIterationReport, HybridJob, HybridPhase, HybridSpec};
pub use iteration::{IterationReport, TrainingJob};
pub use job::{JobSpec, ParallelLayout};
pub use recovery::{DetectionModel, DiagnosisModel, RecoveryConfig};
