//! The error-recovery timing models of Fig 2: detection, diagnosis &
//! isolation, checkpointing, re-initialization — with June-2023 (manual
//! operations, sparse checkpoints) and December-2023 (C4D, 10-minute
//! checkpoints) presets calibrated to Table III.

use c4_faults::FaultKind;
use c4_simcore::{DetRng, SimDuration};

/// How long from fault occurrence to operator/system awareness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectionModel {
    /// C4D real-time monitoring: a fixed hang-timeout plus a short
    /// notification tail ("tens of seconds", §IV-B1).
    C4d {
        /// Monitoring/hang-timeout latency.
        latency: SimDuration,
        /// Median of the lognormal notification tail.
        tail_median: SimDuration,
        /// Sigma of the tail.
        tail_sigma: f64,
    },
    /// Pre-C4D: the PyTorch elastic-agent 30-minute watchdog plus however
    /// long until a human notices.
    ElasticWatchdog {
        /// Watchdog timeout (paper: up to 30 minutes).
        timeout: SimDuration,
        /// Median operator response.
        operator_median: SimDuration,
        /// Sigma of operator response.
        operator_sigma: f64,
    },
}

impl DetectionModel {
    /// Samples a detection delay.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            DetectionModel::C4d {
                latency,
                tail_median,
                tail_sigma,
            } => {
                let tail = rng.lognormal(tail_median.as_secs_f64(), tail_sigma);
                latency + SimDuration::from_secs_f64(tail)
            }
            DetectionModel::ElasticWatchdog {
                timeout,
                operator_median,
                operator_sigma,
            } => {
                let op = rng.lognormal(operator_median.as_secs_f64(), operator_sigma);
                timeout + SimDuration::from_secs_f64(op)
            }
        }
    }
}

/// How long to find and isolate the faulty component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiagnosisModel {
    /// C4D automatic localization + steering service; non-local faults
    /// still need a longer manual pass by other monitoring teams.
    C4dAuto {
        /// Automatic localization (telemetry comparison).
        localize: SimDuration,
        /// Steering isolation + restart orchestration.
        steering: SimDuration,
        /// Median of the residual validation/rescheduling tail.
        tail_median: SimDuration,
        /// Sigma of the tail.
        tail_sigma: f64,
        /// Median manual time for non-local (systemic) faults.
        nonlocal_median: SimDuration,
    },
    /// Manual diagnosis: hours-scale lognormals, slower for GPU-internal
    /// faults (the paper: "hours or even days").
    Manual {
        /// Median for GPU-internal faults (CUDA/ECC/NVLink).
        gpu_median: SimDuration,
        /// Median for collective-library timeouts.
        ccl_median: SimDuration,
        /// Median for transport ACK timeouts.
        ack_median: SimDuration,
        /// Median for other/unknown network faults.
        other_median: SimDuration,
        /// Shared sigma.
        sigma: f64,
    },
}

impl DiagnosisModel {
    /// Samples a diagnosis+isolation delay for a fault of `kind`.
    pub fn sample(&self, kind: FaultKind, local: bool, rng: &mut DetRng) -> SimDuration {
        match *self {
            DiagnosisModel::C4dAuto {
                localize,
                steering,
                tail_median,
                tail_sigma,
                nonlocal_median,
            } => {
                if local {
                    let tail = rng.lognormal(tail_median.as_secs_f64(), tail_sigma);
                    localize + steering + SimDuration::from_secs_f64(tail)
                } else {
                    // Systemic fault: C4D narrows the search but dedicated
                    // teams finish the job.
                    let t = rng.lognormal(nonlocal_median.as_secs_f64(), tail_sigma);
                    localize + steering + SimDuration::from_secs_f64(t)
                }
            }
            DiagnosisModel::Manual {
                gpu_median,
                ccl_median,
                ack_median,
                other_median,
                sigma,
            } => {
                let median = match kind {
                    FaultKind::CudaError | FaultKind::EccError | FaultKind::NvlinkError => {
                        gpu_median
                    }
                    FaultKind::NcclTimeout => ccl_median,
                    FaultKind::AckTimeout => ack_median,
                    _ => other_median,
                };
                // Non-local manual cases take even longer (wider search).
                let factor = if local { 1.0 } else { 1.5 };
                SimDuration::from_secs_f64(rng.lognormal(median.as_secs_f64(), sigma) * factor)
            }
        }
    }
}

/// The full recovery configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Detection model.
    pub detection: DetectionModel,
    /// Diagnosis model.
    pub diagnosis: DiagnosisModel,
    /// Checkpoint cadence (productive time between checkpoints).
    pub checkpoint_interval: SimDuration,
    /// Job re-initialization after restart.
    pub reinit: SimDuration,
}

impl RecoveryConfig {
    /// June 2023: elastic watchdog + manual diagnosis + ~4-hour checkpoints
    /// (Table III left column, 31.19 % downtime).
    pub fn june_2023() -> Self {
        RecoveryConfig {
            detection: DetectionModel::ElasticWatchdog {
                timeout: SimDuration::from_mins(30),
                operator_median: SimDuration::from_mins(20),
                operator_sigma: 1.0,
            },
            diagnosis: DiagnosisModel::Manual {
                gpu_median: SimDuration::from_mins(390),
                ccl_median: SimDuration::from_mins(180),
                ack_median: SimDuration::from_mins(72),
                other_median: SimDuration::from_mins(180),
                sigma: 0.9,
            },
            checkpoint_interval: SimDuration::from_hours(4),
            reinit: SimDuration::from_mins(10),
        }
    }

    /// December 2023: C4D detection/diagnosis + 10-minute checkpoints
    /// (Table III right column, 1.16 % downtime).
    pub fn december_2023() -> Self {
        RecoveryConfig {
            detection: DetectionModel::C4d {
                latency: SimDuration::from_secs(30),
                tail_median: SimDuration::from_secs(90),
                tail_sigma: 0.5,
            },
            diagnosis: DiagnosisModel::C4dAuto {
                localize: SimDuration::from_secs(30),
                steering: SimDuration::from_secs(180),
                tail_median: SimDuration::from_mins(25),
                tail_sigma: 0.6,
                nonlocal_median: SimDuration::from_mins(60),
            },
            checkpoint_interval: SimDuration::from_mins(10),
            reinit: SimDuration::from_mins(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c4d_detection_is_seconds_scale() {
        let mut rng = DetRng::seed_from(1);
        let m = RecoveryConfig::december_2023().detection;
        for _ in 0..100 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_secs(30));
            assert!(d < SimDuration::from_mins(15), "sampled {d}");
        }
    }

    #[test]
    fn watchdog_detection_is_tens_of_minutes() {
        let mut rng = DetRng::seed_from(2);
        let m = RecoveryConfig::june_2023().detection;
        let mean: f64 = (0..500)
            .map(|_| m.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / 500.0;
        // 30 min watchdog + lognormal(20 min, σ1) mean ≈ 33 min → ~63 min.
        assert!((2_400.0..5_400.0).contains(&mean), "mean {mean}s");
    }

    #[test]
    fn manual_diagnosis_slowest_for_gpu_faults() {
        let mut rng = DetRng::seed_from(3);
        let m = RecoveryConfig::june_2023().diagnosis;
        let mean_of = |kind: FaultKind, rng: &mut DetRng| -> f64 {
            (0..400)
                .map(|_| m.sample(kind, true, rng).as_secs_f64())
                .sum::<f64>()
                / 400.0
        };
        let gpu = mean_of(FaultKind::EccError, &mut rng);
        let ccl = mean_of(FaultKind::NcclTimeout, &mut rng);
        let ack = mean_of(FaultKind::AckTimeout, &mut rng);
        assert!(gpu > ccl && ccl > ack, "gpu {gpu} ccl {ccl} ack {ack}");
        // Hours scale.
        assert!(gpu > 3.0 * 3600.0);
    }

    #[test]
    fn auto_diagnosis_is_minutes_scale() {
        let mut rng = DetRng::seed_from(4);
        let m = RecoveryConfig::december_2023().diagnosis;
        let mean: f64 = (0..400)
            .map(|_| m.sample(FaultKind::EccError, true, &mut rng).as_secs_f64())
            .sum::<f64>()
            / 400.0;
        // localize 30 s + steering 180 s + tail (~30 min mean) ≈ 35 min.
        assert!((600.0..3_600.0).contains(&mean), "mean {mean}s");
    }

    #[test]
    fn nonlocal_faults_take_longer_under_c4d() {
        let mut rng = DetRng::seed_from(5);
        let m = RecoveryConfig::december_2023().diagnosis;
        let local: f64 = (0..400)
            .map(|_| {
                m.sample(FaultKind::AckTimeout, true, &mut rng)
                    .as_secs_f64()
            })
            .sum::<f64>();
        let nonlocal: f64 = (0..400)
            .map(|_| {
                m.sample(FaultKind::AckTimeout, false, &mut rng)
                    .as_secs_f64()
            })
            .sum::<f64>();
        assert!(nonlocal > local);
    }
}
