//! Regression tests for surgical plan-cache invalidation under the fleet
//! recovery loop: a node replacement bumps the job's communicator
//! incarnations and drops exactly that job's cached plans, a rebase after
//! a topology mutation drops only the plans routing through the changed
//! links, and an unaffected co-tenant job keeps serving cache hits
//! throughout — with no cached route left through an isolated node.

use c4_netsim::EcmpSelector;
use c4_simcore::DetRng;
use c4_topology::{ClosConfig, LinkId, NodeId, Topology};
use c4_trainsim::{JobSpec, ParallelLayout, TrainingJob};

fn topo() -> Topology {
    Topology::build(&ClosConfig::testbed_128())
}

/// A 4-node TP8/DP4 job placed on `nodes`, communicators namespaced by
/// `comm_base` so two jobs can share one cluster.
fn job(t: &Topology, nodes: std::ops::Range<usize>, comm_base: u64) -> TrainingJob {
    let spec = JobSpec::gpt22b_scaling(4);
    let nodes: Vec<NodeId> = nodes.map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(t, &spec, nodes).unwrap();
    TrainingJob::new(t, spec, layout, comm_base)
}

/// Host-uplink/downlink + PCIe links of a node — the links a cached plan
/// can route through on that node (mirrors the fleet controller's audit
/// set).
fn node_links(t: &Topology, node: NodeId) -> Vec<LinkId> {
    let mut out = Vec::new();
    for &nic in &t.node(node).nics {
        for p in t.nic(nic).ports {
            out.push(t.port(p).host_up);
            out.push(t.port(p).host_down);
        }
    }
    for &g in &t.node(node).gpus {
        let gpu = t.gpu(g);
        out.push(gpu.pcie_tx);
        out.push(gpu.pcie_rx);
    }
    out
}

/// Warms a job's plan cache with `n` iterations.
fn warm(j: &mut TrainingJob, t: &Topology, sel: &mut EcmpSelector, rng: &mut DetRng, n: usize) {
    for _ in 0..n {
        let r = j.run_iteration(t, sel, None, rng, &[], None);
        assert!(!r.hung);
    }
}

#[test]
fn replacement_bumps_incarnation_and_spares_the_co_tenant_job() {
    let mut t = topo();
    // Two co-tenant jobs on disjoint nodes; node 8 is the spare.
    let mut a = job(&t, 0..4, 100);
    let mut b = job(&t, 4..8, 200);
    let mut sel = EcmpSelector::new(5);
    let mut rng = DetRng::seed_from(6);
    warm(&mut a, &t, &mut sel, &mut rng, 2);
    warm(&mut b, &t, &mut sel, &mut rng, 2);

    let groups_a = a.comms().len() as u64;
    let groups_b = b.comms().len() as u64;
    assert_eq!(a.plan_cache().misses(), groups_a, "first iteration builds");
    assert_eq!(a.plan_cache().hits(), groups_a, "second iteration reuses");
    let ids_before: Vec<u64> = a.comms().iter().map(|c| c.id()).collect();

    // The recovery loop: node 1 faults, steering cordons it and hands job
    // A the spare; the job re-places its layout over the new node set.
    let victim = NodeId::from_index(1);
    t.set_node_healthy(victim, false);
    let spec = a.spec().clone();
    let replaced: Vec<NodeId> = [0usize, 8, 2, 3]
        .iter()
        .map(|&i| NodeId::from_index(i))
        .collect();
    let layout = ParallelLayout::place(&t, &spec, replaced).unwrap();
    a.replace_layout(&t, spec, layout);

    // Communicator identity survives, incarnation bumps — and every one of
    // job A's cached plans (keyed by the old incarnation) is gone.
    let ids_after: Vec<u64> = a.comms().iter().map(|c| c.id()).collect();
    assert_eq!(ids_before, ids_after, "replacement keeps communicator ids");
    assert!(a.comms().iter().all(|c| c.incarnation() == 1));
    assert!(b.comms().iter().all(|c| c.incarnation() == 0));
    assert!(
        a.plan_cache().is_empty(),
        "all of the replaced job's plans must be invalidated"
    );

    // Job B never touched node 1: a surgical rebase over the victim's
    // links drops nothing and restores B's hits despite the global
    // topology-version bump from the isolation.
    let victim_links = node_links(&t, victim);
    assert_eq!(b.plan_cache_mut().rebase(&t, &victim_links), 0);
    assert_eq!(b.plan_cache().len() as u64, groups_b);
    let b_hits = b.plan_cache().hits();
    let b_misses = b.plan_cache().misses();
    warm(&mut b, &t, &mut sel, &mut rng, 1);
    assert_eq!(b.plan_cache().hits(), b_hits + groups_b, "B keeps hitting");
    assert_eq!(b.plan_cache().misses(), b_misses, "B re-plans nothing");

    // Job A re-plans from scratch over the repaired layout, and no fresh
    // plan may route through the isolated node.
    let a_misses = a.plan_cache().misses();
    warm(&mut a, &t, &mut sel, &mut rng, 1);
    assert_eq!(a.plan_cache().misses(), a_misses + groups_a);
    assert!(
        !a.plan_cache().any_route_through(&victim_links),
        "stale route through the isolated node"
    );
    assert!(!b.plan_cache().any_route_through(&victim_links));
}

#[test]
fn rebase_drops_only_the_plans_through_the_changed_links() {
    let mut t = topo();
    let mut a = job(&t, 0..4, 100);
    let mut b = job(&t, 4..8, 200);
    let mut sel = EcmpSelector::new(5);
    let mut rng = DetRng::seed_from(6);
    warm(&mut a, &t, &mut sel, &mut rng, 2);
    warm(&mut b, &t, &mut sel, &mut rng, 2);
    let groups_a = a.comms().len() as u64;
    let groups_b = b.comms().len() as u64;

    // A PCIe ×16→×4 downgrade on one GPU of node 0. Only DP group 0 has a
    // rank on that GPU, so exactly one of job A's plans routes through its
    // PCIe links.
    let gpu = t.gpu(t.gpu_at(NodeId::from_index(0), 0));
    let changed = [gpu.pcie_tx, gpu.pcie_rx];
    for l in changed {
        t.link_mut(l).set_degradation(0.25);
    }

    let dropped_a = a.plan_cache_mut().rebase(&t, &changed);
    assert_eq!(dropped_a, 1, "exactly the degraded group's plan is dropped");
    assert!(!a.plan_cache().any_route_through(&changed));
    assert_eq!(b.plan_cache_mut().rebase(&t, &changed), 0);

    // Next iteration: job A re-plans one group and reuses the rest; job B
    // is untouched.
    let (a_hits, a_misses) = (a.plan_cache().hits(), a.plan_cache().misses());
    warm(&mut a, &t, &mut sel, &mut rng, 1);
    assert_eq!(a.plan_cache().misses(), a_misses + 1, "one plan rebuilt");
    assert_eq!(a.plan_cache().hits(), a_hits + groups_a - 1);

    let (b_hits, b_misses) = (b.plan_cache().hits(), b.plan_cache().misses());
    warm(&mut b, &t, &mut sel, &mut rng, 1);
    assert_eq!(b.plan_cache().hits(), b_hits + groups_b);
    assert_eq!(b.plan_cache().misses(), b_misses);
}

#[test]
fn skipping_the_rebase_is_safe_but_loses_the_hits() {
    // The version stamp alone already prevents stale routes: without any
    // rebase after a mutation, every cached plan misses and is rebuilt
    // against the current topology. `rebase` is purely a hit-restoring
    // optimization — this pins the safety half of that contract.
    let mut t = topo();
    let mut b = job(&t, 4..8, 200);
    let mut sel = EcmpSelector::new(5);
    let mut rng = DetRng::seed_from(6);
    warm(&mut b, &t, &mut sel, &mut rng, 2);
    let groups = b.comms().len() as u64;

    t.set_node_healthy(NodeId::from_index(1), false);
    let (hits, misses) = (b.plan_cache().hits(), b.plan_cache().misses());
    warm(&mut b, &t, &mut sel, &mut rng, 1);
    assert_eq!(
        b.plan_cache().misses(),
        misses + groups,
        "un-rebased plans must miss after a topology mutation"
    );
    assert_eq!(b.plan_cache().hits(), hits);
}
