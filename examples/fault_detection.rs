//! C4D end-to-end: a training job develops (1) a straggler GPU and then
//! (2) a dead NIC port; C4D detects both from ACCL telemetry, localizes the
//! node, and the steering service swaps in a backup so the job restarts.
//!
//! Run with: `cargo run --release --example fault_detection`
//!
//! Expected output: the two injection announcements, a "non-communication
//! slow" diagnosis naming node5, a critical "communication hang" diagnosis
//! that isolates node5 and swaps in node15, and finally the merged
//! timestamped event log (WARN/CRIT lines from the C4D master plus the
//! isolation/restart entries from job steering).

use c4::prelude::*;

fn main() {
    let mut topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let spec = JobSpec::gpt22b_tp8_dp16();
    let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(&topo, &spec, nodes).expect("placement");
    let mut job = TrainingJob::new(&topo, spec, layout, 100);
    job.comm_deadline = SimDuration::from_secs(60);

    let mut telemetry: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    job.register_telemetry(&topo, &mut telemetry);

    let mut selector = RailLocalSelector::new();
    let mut rng = DetRng::seed_from(11);
    let mut master = C4dMaster::new(DetectorConfig {
        hang_timeout: SimDuration::from_secs(15),
        ..DetectorConfig::default()
    });

    // Phase 1: a GPU starts running at half speed (non-communication slow).
    let victim_gpu = topo.gpu_at(NodeId::from_index(5), 3);
    let perturb = [ComputePerturbation::slow_gpu(victim_gpu, 2.0)];
    println!("injecting: slow GPU at {victim_gpu} (2× compute time)");
    for _ in 0..3 {
        job.run_iteration(
            &topo,
            &mut selector,
            None,
            &mut rng,
            &perturb,
            Some(&mut telemetry),
        );
    }
    let snapshots: Vec<TelemetrySnapshot> = diag_snapshots(&job, &telemetry);
    let comm_rec = comm_record(&job, 3); // victim's DP group (tp rank 3)
    let diagnoses = master.scan(job.now(), &topo, &comm_rec, &snapshots);
    for d in &diagnoses {
        println!("C4D: {:?} → suspect {:?}", kind_of(&d.syndrome), d.suspect);
    }

    // Phase 2: a NIC port dies — the next gradient sync hangs.
    let port = topo.port_of_gpu(topo.gpu_at(NodeId::from_index(5), 3), PortSide::Left);
    Degradation::nic_half_down(port).apply(&mut topo);
    // Right port too: the whole rail is gone → true hang.
    let port_r = topo.port_of_gpu(topo.gpu_at(NodeId::from_index(5), 3), PortSide::Right);
    Degradation::nic_half_down(port_r).apply(&mut topo);
    println!("\ninjecting: NIC fully down on node5 rail3");
    let report = job.run_iteration(
        &topo,
        &mut selector,
        None,
        &mut rng,
        &[],
        Some(&mut telemetry),
    );
    println!("iteration hung: {}", report.hung);

    let snapshots = diag_snapshots(&job, &telemetry);
    let scan_at = job.now() + SimDuration::from_secs(30);
    let diagnoses = master.scan(scan_at, &topo, &comm_rec, &snapshots);
    let hang = diagnoses
        .iter()
        .find(|d| d.critical)
        .expect("C4D must flag the hang");
    let suspect = hang.suspect.expect("localized to a node");
    println!(
        "C4D: critical {:?} → isolating {suspect}",
        kind_of(&hang.syndrome)
    );

    // Steering: isolate the node, pull a backup, restart the job.
    let mut steering = JobSteering::new(
        SteeringConfig::default(),
        vec![NodeId::from_index(15)], // one spare in the pool
    );
    let plan = steering
        .isolate_and_replace(&mut topo, suspect, scan_at)
        .expect("backup available");
    println!(
        "steering: {} isolated, {} swapped in, job restart ready at {}",
        plan.victim, plan.replacement, plan.ready_at
    );
    job.restart();
    println!("\nevent log:");
    for e in master.log().events() {
        println!("  {e}");
    }
    for e in steering.log().events() {
        println!("  {e}");
    }
}

/// Per-rank snapshots for the victim's DP group.
fn diag_snapshots(job: &TrainingJob, tel: &[WorkerTelemetry]) -> Vec<TelemetrySnapshot> {
    let comm = &job.comms()[3];
    comm.devices()
        .iter()
        .map(|g| tel[g.index()].snapshot(job.now()))
        .collect()
}

fn comm_record(job: &TrainingJob, group: usize) -> CommRecord {
    let comm = &job.comms()[group];
    CommRecord {
        comm: comm.id(),
        devices: comm.devices().to_vec(),
        created: SimTime::ZERO,
    }
}

fn kind_of(s: &Syndrome) -> &'static str {
    match s {
        Syndrome::CommHang { .. } => "communication hang",
        Syndrome::NonCommHang { .. } => "non-communication hang",
        Syndrome::CommSlow { .. } => "communication slow",
        Syndrome::NonCommSlow { .. } => "non-communication slow",
    }
}
