//! A fleet-operations view: one month of a 2,400-GPU job with and without
//! C4, plus a mixed multi-tenant afternoon on the testbed.
//!
//! Run with: `cargo run --release --example multi_job_cluster`
//!
//! Expected output: two sections — a month-long operation comparison
//! (June-2023 manual ops at ~28% downtime vs December-2023 C4D at ~1%,
//! echoing Table III, plus the recovered GPU time) and a three-tenant
//! contention study on the 128-GPU testbed where uncoordinated ECMP leaves
//! every tenant at ~200 Gbps while one shared C4P master lifts all three
//! to the 362 Gbps cap (Fig 10's collision-avoidance effect).

use c4::prelude::*;

fn request(comm: &Communicator) -> CollectiveRequest<'_> {
    CollectiveRequest {
        comm,
        seq: 0,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 256 * 1024 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig::default(),
    }
}

fn main() {
    // Part 1: the month-scale picture (Table III's machinery).
    println!("== one simulated month of a 2,400-GPU LLM job ==");
    let june = simulate_operation(&OperationConfig::june_2023_175b(), 2024);
    let dec = simulate_operation(&OperationConfig::december_2023_175b(), 2024);
    println!(
        "June-2023 ops   : {:>3} crashes, {:>6.2}% downtime (manual diagnosis)",
        june.crashes.len(),
        june.downtime_fraction() * 100.0
    );
    println!(
        "December-2023   : {:>3} crashes, {:>6.2}% downtime (C4D + 10-min ckpt)",
        dec.crashes.len(),
        dec.downtime_fraction() * 100.0
    );
    println!(
        "effective GPU time recovered: {:.1}% of the month",
        (june.downtime_fraction() - dec.downtime_fraction()) * 100.0
    );

    // Part 2: three tenants of different sizes sharing the testbed fabric.
    println!("\n== three concurrent tenants on the 128-GPU testbed ==");
    let topo = Topology::build(&ClosConfig::testbed_128_grouped(2).trunked());
    let mut rng = DetRng::seed_from(9);
    let tenant = |id: u64, nodes: &[usize]| -> Communicator {
        let devices: Vec<GpuId> = nodes
            .iter()
            .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
            .collect();
        Communicator::new(id, devices, &topo).expect("tenant comm")
    };
    let tenants = [
        tenant(1, &[0, 8]),
        tenant(2, &[1, 2, 9, 10]),
        tenant(3, &[3, 4, 5, 11, 12, 13]),
    ];

    for (name, coordinated) in [("uncoordinated ECMP", false), ("one C4P master", true)] {
        let reqs: Vec<CollectiveRequest<'_>> = tenants.iter().map(request).collect();
        let results = if coordinated {
            let mut master = C4pMaster::new(&topo, C4pConfig::default());
            run_concurrent(&topo, &reqs, &mut master, None, &mut rng, None)
        } else {
            let mut ecmp = EcmpSelector::new(77);
            run_concurrent(&topo, &reqs, &mut ecmp, None, &mut rng, None)
        };
        println!("{name}:");
        for (i, r) in results.iter().enumerate() {
            println!(
                "  tenant {} ({} GPUs): {:.0} Gbps busbw",
                i + 1,
                tenants[i].nranks(),
                r.busbw_gbps().unwrap_or(0.0)
            );
        }
    }
    println!("\n(the C4P master is one control plane for all tenants — §III-B)");
}
