//! Quickstart: build the paper's 128-GPU testbed, run one large allreduce
//! with the ECMP baseline and with C4P, and compare bus bandwidth.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Expected output: three lines — the testbed dimensions (128 GPUs,
//! 16 nodes), the baseline-vs-C4P bus bandwidth with the percentage gain
//! (≈200 Gbps → ≈362 Gbps, ~81%), and a reminder that 362 Gbps is the
//! NVLink cap from the paper (§IV-B2).

use c4::prelude::*;

fn main() {
    // The §IV-A testbed: 16 nodes × 8 H800 GPUs, 8 dual-port 2×200 Gbps
    // NICs per node, 8 leaves / 8 spines at 1:1 oversubscription.
    let topo = Topology::build(&ClosConfig::testbed_128().trunked());
    println!(
        "testbed: {} GPUs on {} nodes, {} directed links",
        topo.num_gpus(),
        topo.num_nodes(),
        topo.num_links()
    );

    // A 16-GPU communicator spanning two nodes.
    let devices: Vec<GpuId> = topo.gpus().iter().take(16).map(|g| g.id).collect();
    let comm = Communicator::new(1, devices, &topo).expect("valid communicator");

    // One 1-GiB BF16 ring allreduce.
    let request = CollectiveRequest {
        comm: &comm,
        seq: 0,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 512 * 1024 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig::default(),
    };
    let mut rng = DetRng::seed_from(7);

    // Baseline: the NIC bond + switch ECMP place QPs by hashing.
    let mut ecmp = EcmpSelector::new(1);
    let baseline = run_collective(&topo, &request, &mut ecmp, None, &mut rng, None);

    // C4P: the traffic-engineering master probes the fabric and allocates
    // every QP's path (dual-port balance + spine spreading).
    let mut c4p = C4pMaster::new(&topo, C4pConfig::default());
    let engineered = run_collective(&topo, &request, &mut c4p, None, &mut rng, None);

    println!(
        "allreduce busbw: baseline {:.1} Gbps → C4P {:.1} Gbps ({:.0}% gain)",
        baseline.busbw_gbps().expect("baseline completes"),
        engineered.busbw_gbps().expect("C4P completes"),
        (engineered.busbw_gbps().unwrap() / baseline.busbw_gbps().unwrap() - 1.0) * 100.0
    );
    println!(
        "(the NVLink fabric caps busbw at {:.0} Gbps, as in the paper)",
        topo.config().nvlink_gbps
    );
}
