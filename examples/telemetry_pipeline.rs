//! The streaming telemetry → detection pipeline, end to end: run the Fig 12
//! spine-kill scenario with telemetry capture on, stream the recorded
//! traffic through the incremental C4D master while a CSV sink records the
//! event stream, then replay the CSV through a fresh master and check all
//! three detection paths (batch matrix scan, live stream, CSV replay) agree
//! verdict for verdict.
//!
//! Run with: `cargo run --release --example telemetry_pipeline`
//!
//! Expected output: the capture size, a per-kind breakdown of the recorded
//! event stream, a windowed collective-latency summary, and the three
//! identical diagnosis lists (empty on this healthy-but-degraded run —
//! losing a spine slows the job without tripping the 2× slow threshold).

use c4::prelude::*;
use c4::scenarios::fig12;

fn main() {
    // 1. Run the experiment with job 0's telemetry captured: 6 iterations,
    //    one spine killed after the third.
    let (report, tele) = fig12::run_with_telemetry(false, 42, 6, 3);
    println!(
        "fig12 static run: pre-fault {:.0} Gbps → post-fault {:.0} Gbps busbw",
        report.pre_mean, report.post_mean
    );

    // 2. Flatten the capture into the canonical event stream and export it.
    let snapshots = tele.snapshots();
    let events = events_from_snapshots(&snapshots);
    let mut by_kind = std::collections::BTreeMap::new();
    for e in &events {
        *by_kind
            .entry(match e {
                TelemetryEvent::Comm(_) => "comm",
                TelemetryEvent::Coll(_) => "coll",
                TelemetryEvent::Conn(_) => "conn",
                TelemetryEvent::Rank(_) => "rank",
                TelemetryEvent::Load(_) => "load",
            })
            .or_insert(0usize) += 1;
    }
    println!("captured {} events: {:?}", events.len(), by_kind);

    // 3. Windowed view of the same stream: mean completed-collective
    //    latency per 100 ms of simulated time, flattened to summary records.
    // The canonical order is snapshot-major (rank 0's full history, then
    // rank 1's, …), so time rewinds at each snapshot boundary; allowed
    // lateness spanning the run keeps those arrivals in their panes.
    let lateness = SimDuration::from_secs(1).as_nanos();
    let mut window: WindowedAggregate<u64> = WindowedAggregate::new(
        WindowSpec::tumbling_time(SimDuration::from_millis(100)).with_lateness(lateness),
        Combiner::Mean,
        |e| match e {
            TelemetryEvent::Coll(c) if c.end.is_some() => Some(c.comm),
            _ => None,
        },
        |e| match e {
            TelemetryEvent::Coll(c) => c.end.map(|end| (end - c.start).as_secs_f64() * 1e3),
            _ => None,
        },
    );
    let mut summary = SummarySink::new();
    for e in &events {
        summary.accept_panes(&window.push(e));
    }
    summary.accept_panes(&window.flush());
    for w in summary.records() {
        println!(
            "  window [{:>5} ms, {:>5} ms) comm {}: mean coll latency {:.2} ms over {} ops",
            w.window_start / 1_000_000,
            w.window_end / 1_000_000,
            w.key,
            w.mean,
            w.count
        );
    }

    // 4. Detect three ways — batch matrix scan, live stream, CSV replay —
    //    and verify the verdicts are identical.
    let detection = fig12::run_detection(&tele);
    assert_eq!(detection.streamed, detection.batch, "stream == batch");
    assert_eq!(detection.replayed, detection.streamed, "replay == stream");
    println!(
        "\nrecorded stream: {} CSV bytes; batch/stream/replay all report {} diagnoses",
        detection.events_csv.len(),
        detection.batch.len()
    );
    for d in &detection.batch {
        println!("  {:?} (suspect {:?})", d.syndrome, d.suspect);
    }
    println!("streaming detection path verified: batch == live stream == CSV replay");
}
