//! C4P end-to-end: path probing with a pre-existing faulty link, balanced
//! allocation for two tenants, then a spine failure mid-run with dynamic
//! rebalancing.
//!
//! Run with: `cargo run --release --example traffic_engineering`
//!
//! Expected output: the start-up probe report (healthy-path count with one
//! link eliminated), six iterations of per-tenant bus bandwidth that hold
//! at the 362 Gbps NVLink cap across the mid-run spine failure (the `!!`
//! line marks C4P's re-probe + rebalance), and the final QP count in the
//! allocation ledger.

use c4::prelude::*;

fn request(comm: &Communicator, seq: u64) -> CollectiveRequest<'_> {
    CollectiveRequest {
        comm,
        seq,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 512 * 1024 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig::default(),
    }
}

fn main() {
    // Grouped wiring so tenant traffic crosses the spine layer.
    let mut topo = Topology::build(&ClosConfig::testbed_128_grouped(2).trunked());

    // A flapping link exists before the jobs start.
    let flaky = topo.fabric_up_links(0, 2)[0];
    topo.link_mut(flaky).set_degradation(0.5);
    println!("pre-existing fault: {flaky} degraded to 50%");

    // C4P probes at start-up and eliminates it from the allocation pool.
    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    println!(
        "start-up probe: {} healthy paths, {} link(s) eliminated",
        master.catalog().healthy_count(),
        master.catalog().eliminated_links().len()
    );
    assert!(master.catalog().eliminated_links().contains(&flaky));

    // Two tenants, each an allreduce across a node pair spanning groups.
    let mut rng = DetRng::seed_from(23);
    let jobs: Vec<Communicator> = (0..2)
        .map(|i| {
            let devices: Vec<GpuId> = [i, 8 + i]
                .iter()
                .flat_map(|&n| topo.node(NodeId::from_index(n)).gpus.clone())
                .collect();
            Communicator::new(1 + i as u64, devices, &topo).expect("job comm")
        })
        .collect();

    println!("\niterating; spine 0 dies at iteration 3:");
    for it in 0..6u64 {
        if it == 3 {
            let spine = topo.spines()[0];
            topo.set_spine_up(spine, false);
            master.rebalance(&topo);
            println!("  !! spine {spine} down — C4P re-probed and rebalanced");
        }
        let reqs: Vec<CollectiveRequest<'_>> = jobs.iter().map(|c| request(c, it)).collect();
        let results = run_concurrent(&topo, &reqs, &mut master, None, &mut rng, None);
        let line: Vec<String> = results
            .iter()
            .map(|r| format!("{:.0} Gbps", r.busbw_gbps().unwrap_or(0.0)))
            .collect();
        println!("  iter {it}: tenant busbw {}", line.join(" / "));
        for r in &results {
            master.observe(&r.qp_outcomes);
        }
    }
    println!(
        "\nallocation ledger currently tracks {} QPs",
        master.ledger().total_allocations()
    );
}
