//! Workspace umbrella crate: re-exports the `c4` facade so the repository's
//! `tests/` and `examples/` exercise the full public API.

pub use c4::prelude;
pub use c4::scenarios;
