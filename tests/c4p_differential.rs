//! Differential harness: C4P's partitioned, multi-threaded
//! `select_batch` must be indistinguishable from calling `select` on every
//! key sequentially — not approximately, **exactly**.
//!
//! `PathChoice` is discrete, so the pin is plain equality, and it covers
//! the master's entire observable decision state:
//!
//! * the returned choices, position by position;
//! * the allocation ledger (count of every link in the topology, plus the
//!   allocation total and tracked-link footprint);
//! * the sticky table (queried per key seen so far);
//! * the cache token (generation bookkeeping).
//!
//! Cases randomize the fabric shape (leaves, spines, parallel uplinks,
//! group count), fault injections between rounds (spine kills, fabric-link
//! kills, degradations), dynamic vs static mode, key populations with
//! duplicates and same-leaf flows, and run every batch at 1, 2 and 4
//! worker threads — the same `C4_THREADS ∈ {1, max}` CI matrix dimension
//! the rest of the workspace pins. The batch threshold is dropped to 1 so
//! the partitioned path is exercised even on small inputs.

use c4::prelude::*;
use proptest::prelude::*;

/// Builds a grouped fabric whose shape is driven by the proptest case:
/// 2-GPU/2-NIC nodes so rails and bonded sides stay meaningful at small
/// scale.
fn build_topo(nodes: usize, spines: usize, uplinks: u8, groups: usize) -> Topology {
    let cfg = ClosConfig {
        nodes,
        gpus_per_node: 2,
        nics_per_node: 2,
        num_leaves: 8,
        num_spines: spines,
        uplinks_per_leaf_spine: uplinks,
        port_gbps: 200.0,
        fabric_gbps: 200.0,
        nvlink_gbps: 362.0,
        pcie_gbps: 400.0,
        wiring: WiringMode::NodeGrouped { groups },
    };
    cfg.validate().expect("valid differential fabric");
    Topology::build(&cfg)
}

/// A random key population: duplicates, same-leaf pairs, mixed rails,
/// QPs (sides), communicators and incarnations all occur.
fn random_keys(topo: &Topology, rng: &mut DetRng, n: usize) -> Vec<FlowKey> {
    let nodes = topo.num_nodes();
    (0..n)
        .map(|_| {
            let src_node = rng.index(nodes);
            let mut dst_node = rng.index(nodes);
            if dst_node == src_node {
                dst_node = (src_node + 1) % nodes;
            }
            let rail = rng.index(2);
            FlowKey {
                src_gpu: topo.gpu_at(NodeId::from_index(src_node), rail),
                dst_gpu: topo.gpu_at(NodeId::from_index(dst_node), rail),
                comm: 1 + rng.index(4) as u64,
                channel: rng.index(6) as u16,
                qp: rng.index(4) as u16,
                incarnation: rng.index(2) as u32,
            }
        })
        .collect()
}

/// Asserts two masters are in the same observable state.
fn assert_masters_agree(
    a: &C4pMaster,
    b: &C4pMaster,
    topo: &Topology,
    keys: &[FlowKey],
    what: &str,
) {
    assert_eq!(
        a.ledger().total_allocations(),
        b.ledger().total_allocations(),
        "{what}: allocation totals"
    );
    assert_eq!(
        a.ledger().tracked_links(),
        b.ledger().tracked_links(),
        "{what}: tracked links"
    );
    for l in 0..topo.num_links() {
        let l = LinkId::from_index(l);
        assert_eq!(
            a.ledger().load(l),
            b.ledger().load(l),
            "{what}: ledger count on {l}"
        );
    }
    for k in keys {
        assert_eq!(a.allocation(k), b.allocation(k), "{what}: sticky for {k:?}");
    }
    assert_eq!(a.cache_token(), b.cache_token(), "{what}: cache token");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched selection equals sequential selection exactly — choices,
    /// ledger, sticky table — across rounds of faults, rebalances and
    /// repeated keys, at 2 and 4 worker threads.
    #[test]
    fn select_batch_matches_sequential_select(
        nodes in 4usize..10,
        spines in 2usize..5,
        uplinks in 1u8..3,
        groups_pick in 0usize..2,
        dynamic_pick in 0usize..2,
        seed in 0u64..1_000_000,
        rounds in 1usize..4,
    ) {
        let groups = [2usize, 4][groups_pick];
        let dynamic = dynamic_pick == 1;
        let mut topo = build_topo(nodes, spines, uplinks, groups);
        let mut rng = DetRng::seed_from(seed);
        let cfg = C4pConfig { dynamic, ema_alpha: 0.5 };

        let mut serial = C4pMaster::new(&topo, cfg);
        let mut batch: Vec<C4pMaster> = [2usize, 4]
            .iter()
            .map(|&t| {
                let mut m = C4pMaster::new(&topo, cfg)
                    .with_parallel(ParallelPolicy::with_threads(t));
                m.set_batch_min_keys(1);
                m
            })
            .collect();

        let mut seen: Vec<FlowKey> = Vec::new();
        for round in 0..rounds {
            // Mutate the fabric between rounds: spine kills, single-link
            // kills, degradations — then (dynamic only, sometimes) let the
            // masters rebalance onto the survivors.
            if round > 0 {
                match rng.index(4) {
                    0 => {
                        let spine = topo.spines()[rng.index(topo.num_spines())];
                        topo.set_spine_up(spine, false);
                    }
                    1 => {
                        let li = rng.index(topo.num_leaves());
                        let si = rng.index(topo.num_spines());
                        let links = topo.fabric_up_links(li, si).to_vec();
                        let victim = links[rng.index(links.len())];
                        topo.link_mut(victim).set_up(false);
                    }
                    2 => {
                        let si = rng.index(topo.num_spines());
                        let li = rng.index(topo.num_leaves());
                        let links = topo.fabric_down_links(si, li).to_vec();
                        let victim = links[rng.index(links.len())];
                        topo.link_mut(victim).set_degradation(0.5);
                    }
                    _ => {
                        // Heal everything (fresh catalog on rebalance).
                        let spines: Vec<SwitchId> = topo.spines().to_vec();
                        for s in spines {
                            topo.set_spine_up(s, true);
                        }
                    }
                }
                if rng.chance(0.5) {
                    serial.rebalance(&topo);
                    for m in batch.iter_mut() {
                        m.rebalance(&topo);
                    }
                }
            }

            // A key burst with duplicates (sticky hits and re-allocations
            // of dead paths within one batch).
            let burst = 1 + rng.index(120);
            let mut keys = random_keys(&topo, &mut rng, burst);
            if !seen.is_empty() && rng.chance(0.7) {
                // Replay some earlier keys so dead sticky entries get hit.
                for _ in 0..rng.index(20) {
                    keys.push(seen[rng.index(seen.len())]);
                }
            }

            let expected: Vec<PathChoice> =
                keys.iter().map(|k| serial.select(&topo, k)).collect();
            for m in batch.iter_mut() {
                let threads = m.parallel().threads();
                let got = m.select_batch(&topo, &keys);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "round {} at {} threads",
                    round,
                    threads
                );
            }
            seen.extend(keys);
            for m in &batch {
                let threads = m.parallel().threads();
                assert_masters_agree(
                    m,
                    &serial,
                    &topo,
                    &seen,
                    &format!("round {round} at {threads} threads"),
                );
            }
        }
    }

    /// The engine's batched multi-request planning (one `select_batch`
    /// across all cache misses) drains to bit-identical results whatever
    /// the thread budget, C4P and ECMP alike, with plans cached across
    /// iterations.
    #[test]
    fn concurrent_planning_is_thread_invariant(
        nodes in 2usize..5,
        seed in 0u64..1_000_000,
        c4p_pick in 0usize..2,
    ) {
        let use_c4p = c4p_pick == 1;
        let topo = Topology::build(&ClosConfig::tiny(nodes));
        let devices_of = |first: usize, span: usize| -> Vec<GpuId> {
            (first..first + span)
                .map(NodeId::from_index)
                .flat_map(|n| topo.node(n).gpus.clone())
                .collect()
        };
        let comms: Vec<Communicator> = (0..nodes.min(2))
            .map(|j| {
                Communicator::new(1 + j as u64, devices_of(j, nodes - j), &topo)
                    .expect("valid communicator")
            })
            .collect();

        let run_with = |threads: usize| -> Vec<CollectiveResult> {
            let parallel = ParallelPolicy::with_threads(threads);
            let mut cache = PlanCache::new();
            let mut rng = DetRng::seed_from(seed);
            let mut ecmp;
            let mut c4p;
            let selector: &mut dyn PathSelector = if use_c4p {
                c4p = C4pMaster::new(&topo, C4pConfig::default()).with_parallel(parallel);
                c4p.set_batch_min_keys(1);
                &mut c4p
            } else {
                ecmp = EcmpSelector::new(seed);
                &mut ecmp
            };
            let mut all = Vec::new();
            for it in 0..3u64 {
                let reqs: Vec<CollectiveRequest<'_>> = comms
                    .iter()
                    .map(|comm| CollectiveRequest {
                        comm,
                        seq: it,
                        kind: CollKind::AllReduce,
                        dtype: DataType::Bf16,
                        count: 1024 * 1024,
                        config: CommConfig::default(),
                        start: SimTime::ZERO,
                        rank_ready: None,
                        drain: DrainConfig {
                            parallel,
                            ..DrainConfig::default()
                        },
                    })
                    .collect();
                all.extend(run_concurrent_cached(
                    &topo,
                    &reqs,
                    selector,
                    None,
                    &mut rng,
                    None,
                    Some(&mut cache),
                ));
            }
            all
        };

        let serial = run_with(1);
        for threads in [2usize, 4] {
            let par = run_with(threads);
            prop_assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                prop_assert_eq!(a.finished, b.finished, "{} threads", threads);
                prop_assert_eq!(a.qp_outcomes.len(), b.qp_outcomes.len());
                for (x, y) in a.qp_outcomes.iter().zip(&b.qp_outcomes) {
                    prop_assert_eq!(x.key, y.key);
                    prop_assert_eq!(x.bytes, y.bytes);
                    prop_assert_eq!(x.finish, y.finish);
                    prop_assert_eq!(
                        x.mean_rate.as_gbps().to_bits(),
                        y.mean_rate.as_gbps().to_bits()
                    );
                }
            }
        }
    }
}

/// The default `select_batch` (serial loop) and explicit `select` calls
/// agree for the baseline selectors too — the trait contract everything
/// above builds on.
#[test]
fn default_batch_matches_select_for_baselines() {
    let topo = Topology::build(&ClosConfig::testbed_128_grouped(2));
    let mut rng = DetRng::seed_from(99);
    let keys = random_keys(&topo, &mut rng, 64);

    let mut a = EcmpSelector::new(7);
    let mut b = EcmpSelector::new(7);
    let batched = a.select_batch(&topo, &keys);
    let single: Vec<PathChoice> = keys.iter().map(|k| b.select(&topo, k)).collect();
    assert_eq!(batched, single);

    let mut a = RailLocalSelector::new();
    let mut b = RailLocalSelector::new();
    let batched = a.select_batch(&topo, &keys);
    let single: Vec<PathChoice> = keys.iter().map(|k| b.select(&topo, k)).collect();
    assert_eq!(
        batched, single,
        "stateful round-robin must advance identically"
    );
}
