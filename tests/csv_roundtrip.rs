//! Property tests for the CSV layer's round-trip contract:
//! `parse(emit(records)) == records`, exactly, for every record type and for
//! the unified telemetry event stream — including the edges that broke the
//! original emit-only implementation: empty optional columns (in-flight
//! collectives, never-completed connections, empty device lists) and RFC
//! 4180 quoting of free-text fields (commas, doubled quotes, newlines and
//! carriage returns inside the event log's `detail` column).

use c4::prelude::*;
use proptest::prelude::*;

/// Characters that stress the quoting path: separators, quotes, both kinds
/// of line break, the device-list separator and some plain text.
const AWKWARD: &[char] = &['a', 'Z', '7', ' ', ',', '"', '\n', '\r', '|', '.', ':', '—'];

fn awkward_string(rng: &mut DetRng) -> String {
    let len = rng.index(12);
    (0..len)
        .map(|_| AWKWARD[rng.index(AWKWARD.len())])
        .collect()
}

fn random_time(rng: &mut DetRng) -> SimTime {
    SimTime::from_nanos(rng.index(u32::MAX as usize) as u64 * 7 + rng.index(1_000) as u64)
}

fn random_dur(rng: &mut DetRng) -> SimDuration {
    SimDuration::from_nanos(rng.index(u32::MAX as usize) as u64)
}

/// One random telemetry event, biased towards the edge cases: empty device
/// lists, in-flight collectives (no end), never-completed connections and
/// awkward binary fractions in load values.
fn random_event(rng: &mut DetRng) -> TelemetryEvent {
    match rng.index(5) {
        0 => TelemetryEvent::Comm(CommRecord {
            comm: rng.index(1 << 20) as u64,
            devices: (0..rng.index(5)).map(GpuId::from_index).collect(),
            created: random_time(rng),
        }),
        1 => TelemetryEvent::Coll(CollRecord {
            comm: rng.index(1 << 20) as u64,
            seq: rng.index(1 << 16) as u64,
            rank: rng.index(64) as u32,
            kind: *rng
                .pick(&[CollKind::AllReduce, CollKind::AllGather, CollKind::AllToAll])
                .unwrap(),
            algo: *rng.pick(&[AlgoKind::Ring, AlgoKind::Tree]).unwrap(),
            dtype: *rng.pick(&[DataType::Bf16, DataType::F32]).unwrap(),
            count: rng.index(1 << 30) as u64,
            start: random_time(rng),
            end: rng.chance(0.5).then(|| random_time(rng)),
        }),
        2 => {
            let key = ConnKey {
                comm: rng.index(1 << 20) as u64,
                channel: rng.index(1 << 16) as u16,
                qp: rng.index(1 << 16) as u16,
                src_gpu: GpuId::from_index(rng.index(4096)),
                dst_gpu: GpuId::from_index(rng.index(4096)),
            };
            let mut rec = ConnRecord::new(key, PortId::from_index(rng.index(64)));
            for _ in 0..rng.index(4) {
                rec.record_message(rng.index(1 << 30) as u64, random_dur(rng), random_time(rng));
            }
            TelemetryEvent::Conn(rec)
        }
        3 => TelemetryEvent::Rank(RankRecord {
            comm: rng.index(1 << 20) as u64,
            rank: rng.index(64) as u32,
            step: rng.index(1 << 16) as u64,
            compute: random_dur(rng),
            ready_delay: random_dur(rng),
            arrived: random_time(rng),
        }),
        _ => TelemetryEvent::Load(LoadSample {
            comm: rng.index(1 << 20) as u64,
            rank: rng.index(64) as u32,
            step: rng.index(1 << 16) as u64,
            at: random_time(rng),
            // Awkward binary fractions: sums of random dyadic and decimal
            // parts rarely have short exact decimal forms, so this leans on
            // f64's shortest-round-trip Display for exactness.
            value: rng.uniform_range(0.0, 1e9) + 0.1,
        }),
    }
}

fn random_c4_event(rng: &mut DetRng) -> C4Event {
    C4Event {
        time: random_time(rng),
        severity: *rng
            .pick(&[Severity::Info, Severity::Warning, Severity::Critical])
            .unwrap(),
        kind: *rng
            .pick(&[
                EventKind::CommHang,
                EventKind::NonCommHang,
                EventKind::CommSlow,
                EventKind::NonCommSlow,
                EventKind::NodeIsolated,
                EventKind::JobRestart,
                EventKind::LinkEliminated,
                EventKind::Rebalanced,
            ])
            .unwrap(),
        node: rng.chance(0.5).then(|| NodeId::from_index(rng.index(512))),
        gpu: rng.chance(0.5).then(|| GpuId::from_index(rng.index(4096))),
        link: rng.chance(0.5).then(|| LinkId::from_index(rng.index(8192))),
        detail: awkward_string(rng),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unified event stream round-trips exactly: any mix of the five
    /// event kinds, including empty optional columns, survives
    /// `parse_csv_document(to_csv_document(..))` unchanged.
    #[test]
    fn telemetry_event_stream_round_trips(seed in 0u64..1_000_000, n in 0usize..40) {
        let mut rng = DetRng::seed_from(seed);
        let events: Vec<TelemetryEvent> = (0..n).map(|_| random_event(&mut rng)).collect();
        let doc = to_csv_document(&events);
        let back: Vec<TelemetryEvent> = parse_csv_document(&doc).expect("round trip parses");
        prop_assert_eq!(back, events);
        // Re-emitting the parse reproduces the document byte for byte.
        let reparsed: Vec<TelemetryEvent> = parse_csv_document(&doc).unwrap();
        prop_assert_eq!(to_csv_document(&reparsed), doc);
    }

    /// The event log's free-text `detail` column survives RFC 4180 quoting:
    /// commas, embedded quotes, LF and CR — the characters that corrupt a
    /// naive join/split CSV — round-trip verbatim, as do empty localization
    /// columns.
    #[test]
    fn event_log_round_trips_awkward_detail(seed in 0u64..1_000_000, n in 0usize..20) {
        let mut rng = DetRng::seed_from(seed ^ 0xC4);
        let mut log = EventLog::new();
        for _ in 0..n {
            log.push(random_c4_event(&mut rng));
        }
        let doc = log.to_csv();
        let back = EventLog::parse_csv(&doc).expect("event log parses");
        prop_assert_eq!(back.events(), log.events());
        prop_assert_eq!(back.to_csv(), doc);
    }

    /// Each concrete record type also round-trips through its own typed
    /// document (distinct headers, empty-field edges included).
    #[test]
    fn typed_record_documents_round_trip(seed in 0u64..1_000_000, n in 0usize..20) {
        let mut rng = DetRng::seed_from(seed ^ 0xD0C);
        let mut comms = Vec::new();
        let mut colls = Vec::new();
        let mut conns = Vec::new();
        let mut ranks = Vec::new();
        for _ in 0..n {
            match random_event(&mut rng) {
                TelemetryEvent::Comm(r) => comms.push(r),
                TelemetryEvent::Coll(r) => colls.push(r),
                TelemetryEvent::Conn(r) => conns.push(r),
                TelemetryEvent::Rank(r) => ranks.push(r),
                TelemetryEvent::Load(_) => {}
            }
        }
        prop_assert_eq!(
            parse_csv_document::<CommRecord>(&to_csv_document(&comms)).unwrap(),
            comms
        );
        prop_assert_eq!(
            parse_csv_document::<CollRecord>(&to_csv_document(&colls)).unwrap(),
            colls
        );
        prop_assert_eq!(
            parse_csv_document::<ConnRecord>(&to_csv_document(&conns)).unwrap(),
            conns
        );
        prop_assert_eq!(
            parse_csv_document::<RankRecord>(&to_csv_document(&ranks)).unwrap(),
            ranks
        );
    }
}
