//! Regression for the PR 1 open item: a fully dead NIC port must not hang
//! `drain()` when no deadline is set.
//!
//! `workspace_smoke::dead_port_hangs_ecmp_and_c4d_diagnoses_it` sidesteps the
//! hang via an explicit deadline; these tests pin the fix proper. Once every
//! remaining flow sits at zero rate, no noise draw can revive it (noise only
//! multiplies the max-min allocation by a factor ≤ 1), so the drain ends with
//! a stalled report instead of spinning — whether the loop is noisy or not,
//! and whether a deadline exists or not.

use c4::prelude::*;

fn run_dead_port(drain: DrainConfig) -> CollectiveResult {
    let mut topo = Topology::build(&ClosConfig::tiny(2));
    let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
    let comm = Communicator::new(1, devices, &topo).expect("valid communicator");

    let victim_gpu = topo.gpu_at(NodeId::from_index(0), 0);
    for side in PortSide::BOTH {
        Degradation::nic_half_down(topo.port_of_gpu(victim_gpu, side)).apply(&mut topo);
    }

    let mut selector = EcmpSelector::new(42);
    let mut rng = DetRng::seed_from(7);
    let req = CollectiveRequest {
        comm: &comm,
        seq: 1,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 64 * 1024 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain,
    };
    run_collective(&topo, &req, &mut selector, None, &mut rng, None)
}

#[test]
fn dead_port_without_deadline_returns_stalled() {
    let hung = run_dead_port(DrainConfig::default());
    assert!(hung.hung(), "dead port must surface as a hung collective");
    assert!(!hung.report.stalled().is_empty());
}

#[test]
fn noisy_dead_port_without_deadline_returns_stalled() {
    let hung = run_dead_port(DrainConfig {
        rate_noise: 0.10,
        cnp: Some(CnpModel::default()),
        ..DrainConfig::default()
    });
    assert!(
        hung.hung(),
        "noisy dead port must surface as a hung collective"
    );
    assert!(!hung.report.stalled().is_empty());
}

#[test]
fn noisy_dead_port_ends_at_stall_instant_not_deadline() {
    // Pre-fix, a noisy all-stalled drain stepped 10 ms epochs all the way to
    // the deadline — a month-scale horizon is ~2.6e8 no-op events, an
    // effective hang. The report must end when the last flow stalls, far
    // before the deadline.
    let deadline = SimTime::from_secs(30 * 24 * 3600);
    let hung = run_dead_port(DrainConfig {
        rate_noise: 0.10,
        cnp: Some(CnpModel::default()),
        deadline: Some(deadline),
        ..DrainConfig::default()
    });
    assert!(hung.hung());
    assert!(
        hung.report.end < deadline,
        "drain must end at the stall instant, got {:?}",
        hung.report.end
    );
}
