//! Integration: the full C4D pipeline — train, inject a fault, collect
//! telemetry, detect, localize, steer, restart — for every fault family the
//! paper's Table I names.

use c4::prelude::*;

/// Builds the standard testbed job with telemetry plumbing.
struct Harness {
    topo: Topology,
    job: TrainingJob,
    telemetry: Vec<WorkerTelemetry>,
    rng: DetRng,
}

impl Harness {
    fn new(seed: u64) -> Self {
        let topo = Topology::build(&ClosConfig::testbed_128().trunked());
        let spec = JobSpec::gpt22b_tp8_dp16();
        let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
        let layout = ParallelLayout::place(&topo, &spec, nodes).expect("placement");
        let mut job = TrainingJob::new(&topo, spec, layout, 500);
        job.comm_deadline = SimDuration::from_secs(45);
        let mut telemetry: Vec<WorkerTelemetry> = topo
            .gpus()
            .iter()
            .map(|g| WorkerTelemetry::new(g.id))
            .collect();
        job.register_telemetry(&topo, &mut telemetry);
        Harness {
            topo,
            job,
            telemetry,
            rng: DetRng::seed_from(seed),
        }
    }

    fn run_iterations(
        &mut self,
        n: usize,
        perturb: &[ComputePerturbation],
    ) -> Vec<IterationReport> {
        let mut sel = RailLocalSelector::new();
        (0..n)
            .map(|_| {
                self.job.run_iteration(
                    &self.topo,
                    &mut sel,
                    None,
                    &mut self.rng,
                    perturb,
                    Some(&mut self.telemetry),
                )
            })
            .collect()
    }

    fn scan_group(&self, master: &mut C4dMaster, group: usize, at: SimTime) -> Vec<Diagnosis> {
        let comm = &self.job.comms()[group];
        let rec = CommRecord {
            comm: comm.id(),
            devices: comm.devices().to_vec(),
            created: SimTime::ZERO,
        };
        let snapshots: Vec<TelemetrySnapshot> = comm
            .devices()
            .iter()
            .map(|g| self.telemetry[g.index()].snapshot(at))
            .collect();
        master.scan(at, &self.topo, &rec, &snapshots)
    }
}

#[test]
fn healthy_training_raises_no_diagnoses() {
    let mut h = Harness::new(1);
    h.run_iterations(3, &[]);
    let mut master = C4dMaster::new(DetectorConfig::default());
    for group in 0..8 {
        let diags = h.scan_group(&mut master, group, h.job.now());
        assert!(diags.is_empty(), "group {group}: {diags:?}");
    }
}

#[test]
fn slow_gpu_is_localized_as_noncomm_slow() {
    let mut h = Harness::new(2);
    let victim = h.topo.gpu_at(NodeId::from_index(7), 2);
    let perturb = [ComputePerturbation::slow_gpu(victim, 2.0)];
    h.run_iterations(3, &perturb);
    let mut master = C4dMaster::new(DetectorConfig::default());
    // Victim sits in DP group 2 (tp rank = local index).
    let diags = h.scan_group(&mut master, 2, h.job.now());
    let slow = diags
        .iter()
        .find(|d| matches!(d.syndrome, Syndrome::NonCommSlow { .. }))
        .expect("straggler detected");
    assert_eq!(slow.suspect, Some(NodeId::from_index(7)));
    assert!(!slow.critical);
}

#[test]
fn gc_pause_is_visible_but_smoothing_separates_transients() {
    let mut h = Harness::new(3);
    let victim = h.topo.gpu_at(NodeId::from_index(2), 5);
    // A steady 60%-of-compute GC stall: systemic, must be flagged.
    let pause = h.job.spec().compute_per_iteration() * 0.6;
    let perturb = [ComputePerturbation::gc_pause(victim, pause)];
    h.run_iterations(4, &perturb);

    // The smoother sees the systemic change; a single-step spike would not
    // survive the window (see c4-diagnosis unit tests for the converse).
    let comm = &h.job.comms()[5];
    let mut smoother = LoadSmoother::new(comm.nranks(), 4);
    for (rank, &gpu) in comm.devices().iter().enumerate() {
        for rec in h.telemetry[gpu.index()].ranks() {
            smoother.push(rank, rec.compute.as_secs_f64());
        }
    }
    let (rank, ratio) = smoother.detect_straggler(1.5).expect("systemic straggler");
    assert_eq!(comm.devices()[rank], victim);
    assert!(ratio > 1.5);
}

#[test]
fn dead_nic_hangs_and_steering_replaces_node() {
    // A 14-node job (DP=14) leaves nodes 14/15 as the backup pool — the
    // paper reserves backup servers alongside every active block (§III-A).
    let mut topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let spec = JobSpec::gpt22b_scaling(14);
    let job_nodes: Vec<NodeId> = (0..14).map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(&topo, &spec, job_nodes).expect("placement");
    let mut job = TrainingJob::new(&topo, spec.clone(), layout, 500);
    job.comm_deadline = SimDuration::from_secs(45);
    let mut telemetry: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    job.register_telemetry(&topo, &mut telemetry);
    let mut sel = RailLocalSelector::new();
    let mut rng = DetRng::seed_from(4);
    for _ in 0..2 {
        job.run_iteration(&topo, &mut sel, None, &mut rng, &[], Some(&mut telemetry));
    }

    // Kill both ports of node 9's rail 4.
    let victim_node = NodeId::from_index(9);
    let g = topo.gpu_at(victim_node, 4);
    for side in PortSide::BOTH {
        let p = topo.port_of_gpu(g, side);
        Degradation::nic_half_down(p).apply(&mut topo);
    }
    let report = job.run_iteration(&topo, &mut sel, None, &mut rng, &[], Some(&mut telemetry));
    assert!(report.hung, "dead rail must hang the gradient sync");

    let mut master = C4dMaster::new(DetectorConfig::default());
    let at = job.now() + SimDuration::from_secs(30);
    let comm = &job.comms()[4];
    let rec = CommRecord {
        comm: comm.id(),
        devices: comm.devices().to_vec(),
        created: SimTime::ZERO,
    };
    let snapshots: Vec<TelemetrySnapshot> = comm
        .devices()
        .iter()
        .map(|g| telemetry[g.index()].snapshot(at))
        .collect();
    let diags = master.scan(at, &topo, &rec, &snapshots);
    let hang = diags.iter().find(|d| d.critical).expect("critical hang");
    assert_eq!(
        hang.suspect,
        Some(victim_node),
        "localizes the dead NIC's node"
    );

    // Steering isolates and swaps in a backup; placement then succeeds on
    // the replacement set.
    let mut steering = JobSteering::new(
        SteeringConfig::default(),
        vec![NodeId::from_index(14), NodeId::from_index(15)],
    );
    let plan = steering
        .isolate_and_replace(&mut topo, victim_node, at)
        .expect("backup pool has nodes");
    assert!(!topo.is_node_healthy(victim_node));
    assert!(plan.ready_at > at);
    let mut nodes: Vec<NodeId> = (0..14)
        .map(NodeId::from_index)
        .filter(|&n| n != victim_node)
        .collect();
    nodes.push(plan.replacement);
    nodes.sort();
    let layout = ParallelLayout::place(&topo, &spec, nodes);
    assert!(
        layout.is_ok(),
        "job re-places on the healthy set: {layout:?}"
    );
}

#[test]
fn pcie_downgrade_shows_up_in_conn_stats() {
    let mut h = Harness::new(5);
    // Degrade PCIe of node 3's rail-6 GPU to a quarter.
    let victim = h.topo.gpu_at(NodeId::from_index(3), 6);
    Degradation::pcie_downgrade(victim, 0.25).apply(&mut h.topo);
    h.run_iterations(2, &[]);
    // The victim's boundary sends run at ≤100 Gbps while peers do 200.
    let comm = &h.job.comms()[6];
    let mut victim_rate = f64::INFINITY;
    let mut peer_best: f64 = 0.0;
    for &g in comm.devices() {
        for conn in h.telemetry[g.index()].conns() {
            let gbps = conn.effective_gbps();
            if conn.key.src_gpu == victim {
                victim_rate = victim_rate.min(gbps);
            } else {
                peer_best = peer_best.max(gbps);
            }
        }
    }
    assert!(
        victim_rate < peer_best / 1.8,
        "victim {victim_rate:.0} vs peers {peer_best:.0}"
    );
}

#[test]
fn pp_stage_stall_propagates_to_dp_syndrome() {
    // Paper §V: C4D cannot see inside PP send/recv, but a stalled stage
    // surfaces through the DP collective its workers never reach.
    let topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let spec = JobSpec::gpt175b_tp8_pp8_ga16();
    let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(&topo, &spec, nodes).expect("placement");
    let mut job = TrainingJob::new(&topo, spec, layout, 900);
    let mut telemetry: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    // Stage 3 (nodes 6-7) stalls: model as an extreme compute perturbation
    // on one of its workers (the PP recv that never arrives).
    let stalled = topo.gpu_at(NodeId::from_index(6), 0);
    let perturb = [ComputePerturbation::gc_pause(
        stalled,
        SimDuration::from_secs(600),
    )];
    let mut sel = RailLocalSelector::new();
    let mut rng = DetRng::seed_from(6);
    job.run_iteration(
        &topo,
        &mut sel,
        None,
        &mut rng,
        &perturb,
        Some(&mut telemetry),
    );

    // The DP group containing the stalled worker shows a huge straggler gap.
    let comm = job
        .comms()
        .iter()
        .find(|c| c.rank_of(stalled).is_some())
        .expect("stalled worker has a DP group");
    let rec = CommRecord {
        comm: comm.id(),
        devices: comm.devices().to_vec(),
        created: SimTime::ZERO,
    };
    let snaps: Vec<TelemetrySnapshot> = comm
        .devices()
        .iter()
        .map(|g| telemetry[g.index()].snapshot(job.now()))
        .collect();
    let syndrome = detect_noncomm_slow(&rec, &snaps, &DetectorConfig::default())
        .expect("stall visible through DP");
    match syndrome {
        Syndrome::NonCommSlow { straggler, .. } => {
            assert_eq!(comm.devices()[straggler as usize], stalled);
        }
        s => panic!("unexpected syndrome {s:?}"),
    }
}
