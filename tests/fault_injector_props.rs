//! Property-based tests over the fault injector's schedule draws: time
//! ordering, horizon bounds, seed reproducibility, and the per-class
//! stream/id disjointness the fleet controller's merged schedule relies
//! on.

use c4::prelude::*;
use proptest::prelude::*;

/// A shaped injector input: cluster size, window, and accelerated rates.
fn injector(seed: u64, accel: f64) -> FaultInjector {
    FaultInjector::new(FaultRates::june_2023().scaled(accel), seed)
}

fn degradation_kinds() -> [FaultKind; 4] {
    [
        FaultKind::SlowGpu,
        FaultKind::PcieDowngrade,
        FaultKind::NicHalfDown,
        FaultKind::GcPause,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every schedule is sorted by time and stays inside
    /// `[start, start + horizon)`.
    #[test]
    fn schedules_are_sorted_and_horizon_bounded(
        seed in 0u64..u64::MAX,
        nodes in 4usize..64,
        accel in 1.0_f64..2000.0,
        start_hours in 0u64..48,
        horizon_hours in 1u64..240,
        n_links in 1usize..256,
    ) {
        let gpn = 8;
        let start = SimTime::ZERO + SimDuration::from_hours(start_hours);
        let horizon = SimDuration::from_hours(horizon_hours);
        let end = start + horizon;
        let links: Vec<LinkId> = (0..n_links).map(LinkId::from_index).collect();

        let mut inj = injector(seed, accel);
        let schedules = [
            inj.schedule_crashes(nodes * gpn, nodes, gpn, start, horizon),
            inj.schedule_degradations(nodes * gpn, nodes, gpn, start, horizon),
            inj.schedule_link_failures(&links, start, horizon),
        ];
        for (class, events) in schedules.iter().enumerate() {
            for w in events.windows(2) {
                prop_assert!(
                    w[0].time <= w[1].time,
                    "class {} out of order: {:?} then {:?}",
                    class, w[0].time, w[1].time
                );
            }
            for e in events {
                prop_assert!(
                    e.time >= start && e.time < end,
                    "class {} event at {:?} outside [{:?}, {:?})",
                    class, e.time, start, end
                );
            }
        }
    }

    /// Identical seeds reproduce identical schedules; a different seed
    /// moves at least the event times (given enough events to compare).
    #[test]
    fn schedules_are_seed_reproducible(
        seed in 0u64..u64::MAX,
        nodes in 4usize..32,
        horizon_hours in 24u64..240,
    ) {
        let gpn = 8;
        let horizon = SimDuration::from_hours(horizon_hours);
        let draw = |seed: u64| {
            let mut inj = injector(seed, 500.0);
            (
                inj.schedule_crashes(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon),
                inj.schedule_degradations(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon),
            )
        };
        let (c1, d1) = draw(seed);
        let (c2, d2) = draw(seed);
        prop_assert_eq!(&c1, &c2, "crash schedule not reproducible");
        prop_assert_eq!(&d1, &d2, "degradation schedule not reproducible");

        let (c3, _) = draw(seed ^ 0x5DEECE66D);
        if c1.len() > 3 && c3.len() > 3 {
            let t1: Vec<_> = c1.iter().map(|e| e.time).collect();
            let t3: Vec<_> = c3.iter().map(|e| e.time).collect();
            prop_assert_ne!(t1, t3, "different seed drew the same times");
        }
    }

    /// The three fault classes draw from disjoint random streams: the
    /// schedule one class produces does not depend on whether the other
    /// classes were drawn first (the fleet pre-draws all three back to
    /// back from one injector).
    #[test]
    fn fault_classes_draw_from_disjoint_streams(
        seed in 0u64..u64::MAX,
        nodes in 4usize..32,
        horizon_hours in 24u64..120,
    ) {
        let gpn = 8;
        let horizon = SimDuration::from_hours(horizon_hours);
        let links: Vec<LinkId> = (0..128).map(LinkId::from_index).collect();

        // Interleaved: crashes and link failures drawn before degradations.
        let mut a = injector(seed, 500.0);
        let _ = a.schedule_crashes(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon);
        let _ = a.schedule_link_failures(&links, SimTime::ZERO, horizon);
        let degr_after = a.schedule_degradations(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon);

        // Isolated: degradations drawn first from a fresh injector.
        let mut b = injector(seed, 500.0);
        let degr_first = b.schedule_degradations(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon);

        prop_assert_eq!(degr_after, degr_first, "degradation stream perturbed by other classes");
    }

    /// Event ids are namespaced per class (no collisions when the fleet
    /// merges all three schedules), and each class only emits its own
    /// kinds with the victim fields that kind implies.
    #[test]
    fn merged_schedules_have_disjoint_ids_and_consistent_kinds(
        seed in 0u64..u64::MAX,
        nodes in 4usize..32,
        horizon_hours in 24u64..120,
    ) {
        let gpn = 8;
        let horizon = SimDuration::from_hours(horizon_hours);
        let links: Vec<LinkId> = (0..128).map(LinkId::from_index).collect();

        let mut inj = injector(seed, 500.0);
        let crashes = inj.schedule_crashes(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon);
        let degradations =
            inj.schedule_degradations(nodes * gpn, nodes, gpn, SimTime::ZERO, horizon);
        let link_failures = inj.schedule_link_failures(&links, SimTime::ZERO, horizon);

        for e in &crashes {
            prop_assert!(e.kind.is_crash(), "crash schedule drew {:?}", e.kind);
            prop_assert!(e.node.is_some(), "crash without a victim node");
        }
        for e in &degradations {
            prop_assert!(
                degradation_kinds().contains(&e.kind),
                "degradation schedule drew {:?}", e.kind
            );
            prop_assert!(e.node.is_some(), "degradation without a victim node");
        }
        for e in &link_failures {
            prop_assert_eq!(e.kind, FaultKind::LinkFailure);
            prop_assert!(e.link.is_some() && e.node.is_none());
            prop_assert!(links.contains(&e.link.unwrap()), "victim outside candidates");
        }

        let mut ids: Vec<u64> = crashes
            .iter()
            .chain(&degradations)
            .chain(&link_failures)
            .map(|e| e.id)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "id collision across merged fault classes");
    }
}
