//! The fleet-soak acceptance suite: a seeded long-horizon churn run with
//! every fault class live on the network stack, closed-loop recovery, the
//! zero-stale-route plan-cache invariant, bit-identical results at any
//! thread count, and reconciliation against the closed-form operation
//! model.

use c4::prelude::{FleetConfig, FleetController, ParallelPolicy, SimDuration};
use c4::scenarios::fleet::run_soak;

/// The acceptance soak: the smoke churn mix (6 initial jobs + 3 arrivals)
/// with fault rates pushed hard enough that a 24-hour window draws node
/// crashes, degradations, *and* fabric link failures from the injector's
/// disjoint streams.
fn soak(seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::smoke(seed);
    cfg.rate_multiplier = 120.0;
    cfg
}

#[test]
fn soak_closes_the_loop_on_all_three_fault_classes() {
    let report = FleetController::new(soak(42)).run();

    assert!(
        report.jobs.len() >= 8,
        "churn mix: {} jobs",
        report.jobs.len()
    );
    assert!(
        report.faults.crashes > 0,
        "no node crash drawn: {:?}",
        report.faults
    );
    assert!(
        report.faults.degradations > 0,
        "no degradation drawn: {:?}",
        report.faults
    );
    assert!(
        report.faults.link_failures > 0,
        "no fabric link failure drawn: {:?}",
        report.faults
    );

    // Faults on live jobs flowed the whole loop: streaming verdicts,
    // steering isolations, and replacements/shrinks to keep jobs running.
    assert!(report.isolations > 0, "no isolation: {report:?}");
    assert!(
        report.replacements + report.dp_shrinks > 0,
        "no recovery action: {report:?}"
    );
    assert!(
        report.jobs.iter().any(|j| j.completed),
        "every job died: {report:?}"
    );

    // The plan-cache invariant: every topology mutation was followed by a
    // surgical rebase before any plan was served.
    assert_eq!(report.stale_plan_routes, 0);
    assert!(
        report.cache_hits > 0,
        "steady state must hit the plan cache"
    );
}

#[test]
fn soak_is_bit_identical_at_1_2_and_4_threads() {
    let run_with = |threads: usize| {
        let mut cfg = soak(7);
        cfg.horizon = SimDuration::from_hours(8);
        cfg.parallel = ParallelPolicy::with_threads(threads);
        FleetController::new(cfg).run()
    };
    let one = run_with(1);
    let two = run_with(2);
    let four = run_with(4);
    assert_eq!(one, two, "1-thread vs 2-thread soak diverged");
    assert_eq!(one, four, "1-thread vs 4-thread soak diverged");
}

#[test]
fn soak_downtime_reconciles_with_the_operation_model() {
    let sweep = run_soak(&soak(11));
    let rec = sweep.reconciliation;
    // Non-vacuous: both the live loop and the closed-form model must have
    // seen events at these accelerated rates.
    assert!(rec.fleet_recoveries > 0, "no live recovery: {rec:?}");
    assert!(rec.model_crashes > 0, "no model crash: {rec:?}");
    // Stated tolerance: mean downtime per event agrees within 50 % — the
    // live loop adds round granularity and retry stalls the closed form
    // doesn't model, and draws a different post-checkpoint offset per
    // event.
    assert!(
        rec.per_event_within(0.5),
        "per-event downtime diverged: {rec:?}"
    );
    assert_eq!(sweep.report.stale_plan_routes, 0);
}
