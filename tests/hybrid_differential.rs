//! Differential/property harness for the 4D-hybrid traffic layer.
//!
//! Pins, exactly:
//!
//! * the all-to-all plan: every ordered rank pair appears as exactly one
//!   flow, channels round-trip to the pair, the edge set is invariant under
//!   permutation of the communicator's device list, and EP skew rescales
//!   bytes without changing the per-source (and hence total) byte volume;
//! * C4P's batched selection on all-to-all key populations: `select_batch`
//!   equals sequential `select` at 2 and 4 worker threads, ledger and
//!   sticky state included;
//! * the hybrid iteration: bit-identical phase timings, bus bandwidths and
//!   per-expert received bytes at 1, 2 and 4 threads, and batch planning
//!   equal to one-request-at-a-time planning;
//! * the plan cache: invalidating one communicator of a hybrid job evicts
//!   exactly that plan and no other family's;
//! * `c4d` smoothing: a step-function load shift is detected within one
//!   window, while sub-threshold i.i.d. EP noise never fires the smoothed
//!   detector.

use c4::prelude::*;
use c4::scenarios;
use proptest::prelude::*;

/// A random all-to-all communicator on the tiny fabric: `nranks` GPUs, at
/// most one per node so every pair is an inter-node edge, rank order
/// shuffled.
fn random_a2a_comm(topo: &Topology, rng: &mut DetRng, nranks: usize, id: u64) -> Communicator {
    let mut nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    rng.shuffle(&mut nodes);
    let devices: Vec<GpuId> = nodes[..nranks]
        .iter()
        .map(|&n| topo.gpu_at(NodeId::from_index(n), rng.index(2)))
        .collect();
    Communicator::new(id, devices, topo).expect("valid a2a comm")
}

/// The hybrid job used by the thread-invariance and cache tests: TP2/PP2/
/// EP2 on the 8-node tiny fabric (2 GPUs per node), small messages so the
/// debug-profile CI matrix stays fast.
fn tiny_hybrid(topo: &Topology) -> HybridJob {
    let mut spec = HybridSpec::moe(2, 2, 2);
    spec.tp_elems = 256 * 1024;
    spec.pp_elems = 128 * 1024;
    spec.dp_elems = 512 * 1024;
    spec.ep_elems = 256 * 1024;
    let nodes: Vec<NodeId> = (0..topo.num_nodes()).map(NodeId::from_index).collect();
    HybridJob::new(topo, spec, nodes, 1).expect("tiny hybrid places")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every ordered rank pair of an all-to-all plan appears exactly once,
    /// its channel decodes back to the pair, and rebuilding the plan from a
    /// permuted device list yields the same GPU-pair edge set.
    #[test]
    fn a2a_plan_covers_every_pair_exactly_once(
        nranks in 2usize..8,
        seed in 0u64..1_000_000,
    ) {
        let topo = Topology::build(&ClosConfig::tiny(8));
        let mut rng = DetRng::seed_from(seed);
        let comm = random_a2a_comm(&topo, &mut rng, nranks, 1);
        let plan = AllToAllPlan::build(&topo, &comm);

        prop_assert_eq!(plan.flow_count(), nranks * (nranks - 1));
        let mut seen = std::collections::BTreeSet::new();
        for e in plan.intra.iter().chain(&plan.inter) {
            prop_assert!(e.src_rank != e.dst_rank, "no self-pairs");
            prop_assert!(seen.insert((e.src_rank, e.dst_rank)), "duplicate pair");
            let ch = pair_channel(e.src_rank, e.dst_rank);
            prop_assert_eq!(channel_pair(ch), (e.src_rank, e.dst_rank));
            prop_assert_eq!(comm.devices()[e.src_rank as usize], e.src_gpu);
            prop_assert_eq!(comm.devices()[e.dst_rank as usize], e.dst_gpu);
        }
        prop_assert_eq!(seen.len(), nranks * (nranks - 1));

        // Permuting the device list relabels ranks but must connect the
        // same set of GPU pairs.
        let edge_set = |p: &AllToAllPlan| -> std::collections::BTreeSet<(GpuId, GpuId)> {
            p.intra
                .iter()
                .chain(&p.inter)
                .map(|e| (e.src_gpu, e.dst_gpu))
                .collect()
        };
        let mut permuted = comm.devices().to_vec();
        rng.shuffle(&mut permuted);
        let comm2 = Communicator::new(2, permuted, &topo).expect("permuted comm");
        prop_assert_eq!(edge_set(&plan), edge_set(&AllToAllPlan::build(&topo, &comm2)));
    }

    /// EP skew redistributes all-to-all bytes without creating or
    /// destroying any: per source, shares sum to one, and the engine's
    /// flow-spec bytes under a hot-expert skew total exactly the uniform
    /// volume while the hot rank receives more than any cold rank.
    #[test]
    fn ep_skew_conserves_bytes(
        nranks in 3usize..8,
        hot in 0usize..8,
        factor in 1.5f64..8.0,
        seed in 0u64..1_000_000,
    ) {
        let hot = (hot % nranks) as u32;
        let skew = EpSkew::hot(hot, factor);
        for src in 0..nranks as u32 {
            let total: f64 = (0..nranks as u32)
                .filter(|&d| d != src)
                .map(|d| skew.share(src, d, nranks))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-12, "src {src}: shares sum to {total}");
        }

        // End to end through the engine: identical total bytes as uniform.
        let topo = Topology::build(&ClosConfig::tiny(8));
        let mut rng = DetRng::seed_from(seed);
        let comm = random_a2a_comm(&topo, &mut rng, nranks, 1);
        let run = |ep_skew: EpSkew| -> CollectiveResult {
            let req = CollectiveRequest {
                comm: &comm,
                seq: 0,
                kind: CollKind::AllToAll,
                dtype: DataType::Bf16,
                count: 1024 * 1024,
                config: CommConfig { ep_skew, ..CommConfig::default() },
                start: SimTime::ZERO,
                rank_ready: None,
                drain: DrainConfig::default(),
            };
            let mut sel = EcmpSelector::new(7);
            let mut rng = DetRng::seed_from(1);
            run_concurrent(&topo, &[req], &mut sel, None, &mut rng, None)
                .pop()
                .expect("one result")
        };
        let bytes_by_dst = |r: &CollectiveResult| -> Vec<u64> {
            let mut v = vec![0u64; nranks];
            for o in r.intra_outcomes.iter().chain(&r.qp_outcomes) {
                v[channel_pair(o.key.channel).1 as usize] += o.bytes.as_bytes();
            }
            v
        };
        let skewed = bytes_by_dst(&run(skew));
        let uniform = bytes_by_dst(&run(EpSkew::default()));
        // Each ordered pair's share rounds to whole bytes independently, so
        // totals may differ by up to one byte per flow — never more.
        let diff = (skewed.iter().sum::<u64>() as i64 - uniform.iter().sum::<u64>() as i64).abs();
        prop_assert!(
            diff <= (nranks * (nranks - 1)) as i64,
            "skew must conserve total bytes up to per-flow rounding (off by {diff})"
        );
        for (d, &b) in skewed.iter().enumerate() {
            if d != hot as usize {
                prop_assert!(
                    skewed[hot as usize] > b,
                    "hot rank {hot} must out-receive rank {d}: {skewed:?}"
                );
            }
        }
    }

    /// C4P's partitioned `select_batch` on all-to-all key populations
    /// (channel-encoded pairs, qp 0) equals sequential `select` at 2 and 4
    /// threads — choices, ledger and sticky table.
    #[test]
    fn c4p_batch_matches_sequential_on_a2a_keys(
        nranks in 3usize..8,
        seed in 0u64..1_000_000,
        dynamic_pick in 0usize..2,
    ) {
        let topo = Topology::build(&ClosConfig::tiny(8));
        let mut rng = DetRng::seed_from(seed);
        let comm = random_a2a_comm(&topo, &mut rng, nranks, 1);
        let plan = AllToAllPlan::build(&topo, &comm);
        let mut keys: Vec<FlowKey> = plan
            .inter
            .iter()
            .map(|e| FlowKey {
                src_gpu: e.src_gpu,
                dst_gpu: e.dst_gpu,
                comm: comm.id(),
                channel: pair_channel(e.src_rank, e.dst_rank),
                qp: 0,
                incarnation: comm.incarnation(),
            })
            .collect();
        // Duplicates exercise sticky hits inside one batch.
        for _ in 0..rng.index(8) {
            keys.push(keys[rng.index(keys.len())]);
        }

        let cfg = C4pConfig { dynamic: dynamic_pick == 1, ema_alpha: 0.5 };
        let mut serial = C4pMaster::new(&topo, cfg);
        let expected: Vec<PathChoice> = keys.iter().map(|k| serial.select(&topo, k)).collect();
        for threads in [2usize, 4] {
            let mut batched = C4pMaster::new(&topo, cfg)
                .with_parallel(ParallelPolicy::with_threads(threads));
            batched.set_batch_min_keys(1);
            let got = batched.select_batch(&topo, &keys);
            prop_assert_eq!(&got, &expected, "choices at {} threads", threads);
            prop_assert_eq!(
                batched.ledger().total_allocations(),
                serial.ledger().total_allocations()
            );
            for k in &keys {
                prop_assert_eq!(batched.allocation(k), serial.allocation(k));
            }
        }
    }

    /// A step-function shift in one expert's load is flagged within one
    /// window of full data, while sub-threshold i.i.d. noise never fires
    /// the smoothed detector.
    #[test]
    fn smoothing_detects_steps_but_not_noise(
        nranks in 2usize..10,
        window in 1usize..12,
        seed in 0u64..1_000_000,
        victim in 0usize..10,
        shift in 2.0f64..6.0,
    ) {
        let victim = victim % nranks;
        let mut rng = DetRng::seed_from(seed);

        // Sub-threshold i.i.d. noise: loads in [1, 1.3] can never reach a
        // 1.5× worst/median ratio — raw or smoothed.
        let mut s = LoadSmoother::new(nranks, window);
        for _ in 0..window * 3 {
            let loads: Vec<f64> =
                (0..nranks).map(|_| rng.uniform_range(1.0, 1.3)).collect();
            prop_assert!(raw_straggler(&loads, 1.5).is_none());
            s.push_step(&loads);
            prop_assert!(s.detect_straggler(1.5).is_none(), "noise must not fire");
        }

        // Step shift: after `window` steps of the shifted regime every
        // window holds only shifted samples, so detection is guaranteed by
        // then (often earlier).
        let mut detected_at = None;
        for step in 0..2 * window {
            let loads: Vec<f64> = (0..nranks)
                .map(|r| {
                    let base = rng.uniform_range(1.0, 1.1);
                    if r == victim { base * shift } else { base }
                })
                .collect();
            s.push_step(&loads);
            if let Some((rank, _)) = s.detect_straggler(1.5) {
                prop_assert_eq!(rank, victim, "wrong rank flagged");
                detected_at = Some(step);
                break;
            }
        }
        let at = detected_at.expect("systemic shift must be detected");
        prop_assert!(at < window, "detected at step {at}, window {window}");
    }
}

/// One hybrid iteration drains to bit-identical results at 1, 2 and 4
/// worker threads: phase timings, bus bandwidths and per-expert received
/// bytes.
#[test]
fn hybrid_iteration_is_thread_invariant() {
    let topo = Topology::build(&ClosConfig::tiny(8));
    let run_with = |threads: usize| -> Vec<HybridIterationReport> {
        let parallel = ParallelPolicy::with_threads(threads);
        let mut job = tiny_hybrid(&topo);
        job.drain = DrainConfig {
            parallel,
            ..DrainConfig::default()
        };
        let mut master = C4pMaster::new(&topo, C4pConfig::default()).with_parallel(parallel);
        master.set_batch_min_keys(1);
        let mut rng = DetRng::seed_from(5);
        (0..2)
            .map(|it| {
                job.set_ep_skew(EpSkew::hot(it % 2, 3.0));
                job.run_iteration(&topo, &mut master, None, &mut rng)
            })
            .collect()
    };
    let serial = run_with(1);
    for threads in [2usize, 4] {
        let par = run_with(threads);
        assert_eq!(par.len(), serial.len());
        for (a, b) in par.iter().zip(&serial) {
            assert_eq!(a.total, b.total, "{threads} threads: iteration wall");
            assert_eq!(a.phases.len(), b.phases.len());
            for (x, y) in a.phases.iter().zip(&b.phases) {
                assert_eq!(x.kind, y.kind);
                assert_eq!(
                    x.duration, y.duration,
                    "{threads} threads: {:?} phase",
                    x.kind
                );
                assert_eq!(
                    x.busbw_mean_gbps.map(f64::to_bits),
                    y.busbw_mean_gbps.map(f64::to_bits),
                    "{threads} threads: {:?} busbw",
                    x.kind
                );
            }
            assert_eq!(a.ep_recv_bytes, b.ep_recv_bytes, "{threads} threads");
        }
    }
}

/// The engine's batched planning of a whole hybrid phase (one
/// `select_batch` across all cache misses) equals planning each collective
/// request alone: same flows, same bytes, same completion times.
#[test]
fn batch_planning_matches_sequential_planning() {
    let topo = Topology::build(&ClosConfig::tiny(8));
    let job = tiny_hybrid(&topo);
    let skew = EpSkew::hot(1, 4.0);
    fn mk_req(comm: &Communicator, skew: EpSkew) -> CollectiveRequest<'_> {
        CollectiveRequest {
            comm,
            seq: 0,
            kind: CollKind::AllToAll,
            dtype: DataType::Bf16,
            count: 256 * 1024,
            config: CommConfig {
                ep_skew: skew,
                ..CommConfig::default()
            },
            start: SimTime::ZERO,
            rank_ready: None,
            drain: DrainConfig::default(),
        }
    }

    // Batched: all EP groups planned in one engine call.
    let mut batched_sel = C4pMaster::new(&topo, C4pConfig::default());
    batched_sel.set_batch_min_keys(1);
    let reqs: Vec<CollectiveRequest<'_>> = job.ep_comms().iter().map(|c| mk_req(c, skew)).collect();
    let mut rng = DetRng::seed_from(9);
    let batched = run_concurrent(&topo, &reqs, &mut batched_sel, None, &mut rng, None);

    // Sequential: each group planned by its own engine call (fresh rng per
    // call keeps the drains comparable; a lone request's drain is
    // contention-free, so only flow sets and bytes are compared).
    let mut seq_sel = C4pMaster::new(&topo, C4pConfig::default());
    let sequential: Vec<CollectiveResult> = job
        .ep_comms()
        .iter()
        .map(|comm| {
            let mut rng = DetRng::seed_from(9);
            run_concurrent(
                &topo,
                &[mk_req(comm, skew)],
                &mut seq_sel,
                None,
                &mut rng,
                None,
            )
            .pop()
            .expect("one result")
        })
        .collect();

    assert_eq!(batched.len(), sequential.len());
    for (a, b) in batched.iter().zip(&sequential) {
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.message_bytes, b.message_bytes);
        let flows = |r: &CollectiveResult| -> Vec<(FlowKey, u64)> {
            let mut v: Vec<(FlowKey, u64)> = r
                .intra_outcomes
                .iter()
                .chain(&r.qp_outcomes)
                .map(|o| (o.key, o.bytes.as_bytes()))
                .collect();
            v.sort_by_key(|(k, _)| (k.src_gpu, k.dst_gpu, k.comm, k.channel, k.qp));
            v
        };
        assert_eq!(flows(a), flows(b), "comm {}: flow/byte sets", a.comm);
    }
}

/// Invalidating one communicator's plan leaves every other family's cached
/// plan intact: exactly one extra miss on the next iteration.
#[test]
fn invalidate_comm_is_surgical_across_families() {
    let topo = Topology::build(&ClosConfig::tiny(8));
    let mut job = tiny_hybrid(&topo);
    let mut sel = EcmpSelector::new(3);
    let mut rng = DetRng::seed_from(4);
    let families =
        (job.tp_comms().len() + job.pp_comms().len() + job.dp_comms().len() + job.ep_comms().len())
            as u64;

    job.run_iteration(&topo, &mut sel, None, &mut rng);
    assert_eq!(job.plan_cache().misses(), families, "first pass builds all");
    assert_eq!(job.plan_cache().hits(), 0);

    let victim = job.dp_comms()[0].id();
    job.plan_cache_mut().invalidate_comm(victim);
    job.run_iteration(&topo, &mut sel, None, &mut rng);
    assert_eq!(
        job.plan_cache().misses(),
        families + 1,
        "only the invalidated DP plan rebuilds"
    );
    assert_eq!(
        job.plan_cache().hits(),
        families - 1,
        "every other family's plan survives"
    );
}

/// The scenario layer's EP-imbalance study on real traffic: the raw
/// detector false-fires through healthy rotation, the smoothed detector
/// stays silent yet catches the pinned expert. (Scaled down: the full
/// study lives in the release scenario suite.)
#[test]
fn ep_imbalance_study_smoke() {
    let cfg = scenarios::hybrid::EpImbalanceConfig {
        seed: 2,
        nodes: 32,
        rotate_steps: 10,
        pinned_steps: 6,
        window: 8,
        factor: 2.0,
        hot_factor: 4.0,
    };
    let r = scenarios::hybrid::run_ep_imbalance(&cfg);
    assert!(r.raw_false_positives >= r.rotate_steps / 2);
    assert_eq!(r.smoothed_false_positives, 0);
    assert_eq!(r.detected_rank, Some(r.pinned_rank));
}
