//! Differential harness: the incremental max-min machinery must be
//! indistinguishable from the retained from-scratch reference.
//!
//! Three layers are checked:
//!
//! * **Solver** — [`MaxMinState`] (persistent, component-partitioned,
//!   event-driven kernel) vs [`maxmin::solve`] (textbook progressive
//!   filling), across randomized link tables, route sets, cap tables and
//!   long mutation scripts of flow removals, cap perturbations and link
//!   capacity changes — the exact operations the drain loop feeds it.
//! * **Drain** — [`drain`] (the event-driven engine: completion heap,
//!   dirty-component load/score maintenance, one-pass noise re-caps) vs
//!   [`drain_reference`] (full re-solve per event), across randomized tiny
//!   Clos topologies, flow populations, fault injections (killed host and
//!   fabric links), DCQCN noise epochs, CNP accounting and deadlines —
//!   plus a dedicated noisy-at-scale family on a grouped pod (epoch
//!   re-caps over a spine-shared giant component, same-size completion
//!   batches, deadlines). Both consume the RNG in the same order, so
//!   reports must match event for event and the RNG must land on the same
//!   position (asserted bit-for-bit).
//! * **Parallel determinism** — every solver case also runs 2- and
//!   4-thread [`MaxMinState`]s through the same mutation script, and every
//!   drain case re-runs [`drain`] under 2- and 4-thread policies. Worker
//!   results merge in component-index order, so the parallel path must be
//!   **bit-identical** to the serial one (a strictly stronger bound than
//!   the 1e-9 the reference comparison allows).
//!
//! The proptest stub samples deterministically per test name, so failures
//! reproduce exactly in CI.

use c4::prelude::*;
use proptest::prelude::*;

/// Relative 1e-9 agreement (with a 1e-9 absolute floor for values near 0).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Reference solve over only the live flows of a mutated problem, expanded
/// back to dense flow indexing (removed flows → 0).
fn reference_rates(
    capacity: &[f64],
    routes: &[Vec<u32>],
    caps: &[f64],
    alive: &[bool],
) -> Vec<f64> {
    let live_routes: Vec<Vec<u32>> = routes
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(r, _)| r.clone())
        .collect();
    let live_caps: Vec<f64> = caps
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(c, _)| *c)
        .collect();
    let live = maxmin::solve(capacity, &live_routes, Some(&live_caps));
    let mut out = vec![0.0; routes.len()];
    let mut k = 0;
    for (f, &a) in alive.iter().enumerate() {
        if a {
            out[f] = live[k];
            k += 1;
        }
    }
    out
}

/// Parallel vs serial must agree on every bit, not merely within 1e-9:
/// each component's rates are the same pure function either way, merged in
/// component-index order.
fn assert_rates_bit_identical(parallel: &[f64], serial: &[f64], what: &str) {
    for (f, (&a, &b)) in parallel.iter().zip(serial).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: flow {f} parallel {a} vs serial {b}"
        );
    }
}

fn assert_rates_agree(incremental: &[f64], reference: &[f64], what: &str) {
    for (f, (&a, &b)) in incremental.iter().zip(reference).enumerate() {
        assert!(
            close(a, b),
            "{what}: flow {f} incremental {a} vs reference {b} (diff {})",
            (a - b).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental solver agrees with the reference after construction
    /// and after every step of a random mutation script.
    #[test]
    fn solver_agrees_across_mutation_scripts(
        n_links in 2usize..24,
        n_flows in 1usize..40,
        seed in 0u64..1_000_000,
        script_len in 1usize..60,
    ) {
        let mut rng = DetRng::seed_from(seed);
        let capacity: Vec<f64> =
            (0..n_links).map(|_| 1.0 + rng.uniform() * 400.0).collect();
        let routes: Vec<Vec<u32>> = (0..n_flows)
            .map(|_| {
                // 0..4 links; empty routes exercise the unbounded path.
                let len = rng.index(5);
                (0..len).map(|_| rng.index(n_links) as u32).collect()
            })
            .collect();
        let mut caps: Vec<f64> = (0..n_flows)
            .map(|_| {
                if rng.chance(0.3) {
                    rng.uniform() * 300.0
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let mut alive = vec![true; n_flows];
        let mut capacity_now = capacity.clone();

        let mut state = MaxMinState::with_flows(&capacity, &routes, Some(&caps))
            .with_parallel(ParallelPolicy::SERIAL);
        // The same problem at 2 and 4 threads, fed the identical mutation
        // script: results must be bit-identical to the serial state.
        let mut par_states: Vec<MaxMinState> = [2usize, 4]
            .iter()
            .map(|&t| {
                MaxMinState::with_flows(&capacity, &routes, Some(&caps))
                    .with_parallel(ParallelPolicy::with_threads(t))
            })
            .collect();
        assert_rates_agree(
            state.rates(),
            &reference_rates(&capacity_now, &routes, &caps, &alive),
            "initial solve",
        );
        for p in par_states.iter_mut() {
            let threads = p.parallel().threads();
            assert_rates_bit_identical(
                p.rates(),
                state.rates(),
                &format!("initial solve at {threads} threads"),
            );
        }

        for step in 0..script_len {
            match rng.index(4) {
                0 => {
                    // Remove a (possibly already removed) flow.
                    let f = rng.index(n_flows);
                    state.remove_flow(f);
                    for p in par_states.iter_mut() {
                        p.remove_flow(f);
                    }
                    alive[f] = false;
                }
                1 => {
                    // Perturb a flow's cap (noise epoch).
                    let f = rng.index(n_flows);
                    let cap = if rng.chance(0.2) {
                        f64::INFINITY
                    } else {
                        rng.uniform() * 300.0
                    };
                    state.rate_perturb(f, cap);
                    for p in par_states.iter_mut() {
                        p.rate_perturb(f, cap);
                    }
                    if alive[f] {
                        caps[f] = cap;
                    }
                }
                2 => {
                    // Change a link capacity (degradation / failure / heal).
                    let l = rng.index(n_links);
                    let c = if rng.chance(0.2) {
                        0.0
                    } else {
                        1.0 + rng.uniform() * 400.0
                    };
                    state.link_change(l, c);
                    for p in par_states.iter_mut() {
                        p.link_change(l, c);
                    }
                    capacity_now[l] = c;
                }
                _ => {
                    // Burst: perturb many caps at once, forcing the
                    // full-solve fallback path.
                    for f in 0..n_flows {
                        if rng.chance(0.7) {
                            let cap = rng.uniform() * 300.0;
                            state.rate_perturb(f, cap);
                            for p in par_states.iter_mut() {
                                p.rate_perturb(f, cap);
                            }
                            if alive[f] {
                                caps[f] = cap;
                            }
                        }
                    }
                }
            }
            assert_rates_agree(
                state.rates(),
                &reference_rates(&capacity_now, &routes, &caps, &alive),
                &format!("after mutation step {step}"),
            );
            let serial_now = state.rates().to_vec();
            for p in par_states.iter_mut() {
                let threads = p.parallel().threads();
                assert_rates_bit_identical(
                    p.rates(),
                    &serial_now,
                    &format!("after mutation step {step} at {threads} threads"),
                );
            }
        }
    }

    /// Adding flows mid-flight (a new collective joining the network) keeps
    /// the state in agreement.
    #[test]
    fn solver_agrees_after_flow_additions(
        n_links in 2usize..16,
        seed in 0u64..1_000_000,
        batches in 1usize..6,
    ) {
        let mut rng = DetRng::seed_from(seed);
        let capacity: Vec<f64> =
            (0..n_links).map(|_| 1.0 + rng.uniform() * 400.0).collect();
        let mut state = MaxMinState::new(&capacity).with_parallel(ParallelPolicy::SERIAL);
        let mut par_states: Vec<MaxMinState> = [2usize, 4]
            .iter()
            .map(|&t| MaxMinState::new(&capacity).with_parallel(ParallelPolicy::with_threads(t)))
            .collect();
        let mut routes: Vec<Vec<u32>> = Vec::new();
        let mut caps: Vec<f64> = Vec::new();
        for _ in 0..batches {
            for _ in 0..1 + rng.index(8) {
                let len = 1 + rng.index(4);
                let route: Vec<u32> =
                    (0..len).map(|_| rng.index(n_links) as u32).collect();
                let cap = if rng.chance(0.25) {
                    rng.uniform() * 200.0
                } else {
                    f64::INFINITY
                };
                state.add_flow(&route, cap);
                for p in par_states.iter_mut() {
                    p.add_flow(&route, cap);
                }
                routes.push(route);
                caps.push(cap);
            }
            let alive = vec![true; routes.len()];
            assert_rates_agree(
                state.rates(),
                &reference_rates(&capacity, &routes, &caps, &alive),
                "after addition batch",
            );
            let serial_now = state.rates().to_vec();
            for p in par_states.iter_mut() {
                let threads = p.parallel().threads();
                assert_rates_bit_identical(
                    p.rates(),
                    &serial_now,
                    &format!("after addition batch at {threads} threads"),
                );
            }
            // Interleave a removal so additions mix with removals across
            // partition rebuilds. The mirror models the removed slot as an
            // empty-route, zero-cap flow, which the reference also pins to
            // rate 0 — matching the state's removed-flow convention.
            if !routes.is_empty() && rng.chance(0.5) {
                let f = rng.index(routes.len());
                state.remove_flow(f);
                for p in par_states.iter_mut() {
                    p.remove_flow(f);
                }
                routes[f] = Vec::new();
                caps[f] = 0.0;
                let alive = vec![true; routes.len()];
                assert_rates_agree(
                    state.rates(),
                    &reference_rates(&capacity, &routes, &caps, &alive),
                    "after interleaved removal",
                );
                let serial_now = state.rates().to_vec();
                for p in par_states.iter_mut() {
                    let threads = p.parallel().threads();
                    assert_rates_bit_identical(
                        p.rates(),
                        &serial_now,
                        &format!("after interleaved removal at {threads} threads"),
                    );
                }
            }
        }
    }
}

/// Builds a random flow population over a tiny Clos topology: a mix of
/// intra-node NVLink transfers and ECMP-routed inter-node QPs.
fn random_specs(topo: &Topology, rng: &mut DetRng, n_flows: usize, salt: u64) -> Vec<FlowSpec> {
    let ngpus = topo.num_gpus();
    let mut sel = EcmpSelector::new(salt);
    (0..n_flows)
        .map(|i| {
            let src = GpuId::from_index(rng.index(ngpus));
            let mut dst = GpuId::from_index(rng.index(ngpus));
            if dst == src {
                dst = GpuId::from_index((src.index() + 1) % ngpus);
            }
            let key = FlowKey {
                src_gpu: src,
                dst_gpu: dst,
                comm: 1 + (i as u64 % 4),
                channel: (i % 7) as u16,
                qp: (i % 2) as u16,
                incarnation: 0,
            };
            let route = if topo.gpu(src).node == topo.gpu(dst).node {
                topo.intra_node_route(src, dst)
            } else {
                let choice = sel.select(topo, &key);
                let sp = topo.port_of_gpu(src, choice.src_side);
                let dp = topo.port_of_gpu(dst, choice.dst_side);
                topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst)
            };
            // Sizes span zero-byte edge cases through multi-MiB transfers.
            let bytes = match rng.index(8) {
                0 => ByteSize::ZERO,
                n => ByteSize::from_bytes((1u64 << (14 + 2 * n)) + rng.index(10_000) as u64),
            };
            FlowSpec::new(key, bytes, route)
        })
        .collect()
}

/// Asserts two drain reports agree within the 1e-9 differential tolerance.
fn assert_reports_agree(inc: &DrainReport, reference: &DrainReport, what: &str) {
    assert_eq!(inc.outcomes.len(), reference.outcomes.len());
    let secs = |t: SimTime| (t - SimTime::ZERO).as_secs_f64();
    for (f, (a, b)) in inc.outcomes.iter().zip(&reference.outcomes).enumerate() {
        assert_eq!(
            a.completed(),
            b.completed(),
            "{what}: flow {f} completion mismatch"
        );
        if let (Some(x), Some(y)) = (a.finish, b.finish) {
            assert!(
                close(secs(x), secs(y)),
                "{what}: flow {f} finish {x} vs {y}"
            );
        }
        assert!(
            close(a.mean_rate.as_gbps(), b.mean_rate.as_gbps()),
            "{what}: flow {f} mean rate {} vs {}",
            a.mean_rate,
            b.mean_rate
        );
    }
    assert!(
        close(secs(inc.end), secs(reference.end)),
        "{what}: end {} vs {}",
        inc.end,
        reference.end
    );
    assert_eq!(
        inc.congested_flows, reference.congested_flows,
        "{what}: congested flow count"
    );
    for (l, (&a, &b)) in inc.link_bytes.iter().zip(&reference.link_bytes).enumerate() {
        assert!(close(a, b), "{what}: link {l} bytes {a} vs {b}");
    }
    for (p, (&a, &b)) in inc
        .cnp_per_port
        .iter()
        .zip(&reference.cnp_per_port)
        .enumerate()
    {
        assert!(close(a, b), "{what}: port {p} cnp {a} vs {b}");
    }
}

/// Two [`drain`] reports produced under different thread policies must be
/// exactly equal — same completion instants, same bytes, same CNP series.
fn assert_reports_identical(parallel: &DrainReport, serial: &DrainReport, what: &str) {
    assert_eq!(parallel.outcomes.len(), serial.outcomes.len());
    for (f, (a, b)) in parallel.outcomes.iter().zip(&serial.outcomes).enumerate() {
        assert_eq!(a.finish, b.finish, "{what}: flow {f} finish");
        assert_eq!(a.mean_rate, b.mean_rate, "{what}: flow {f} mean rate");
        assert_eq!(a.min_rate, b.min_rate, "{what}: flow {f} min rate");
        assert_eq!(a.max_rate, b.max_rate, "{what}: flow {f} max rate");
    }
    assert_eq!(parallel.end, serial.end, "{what}: end");
    assert_eq!(
        parallel.congested_flows, serial.congested_flows,
        "{what}: congested flows"
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&parallel.link_bytes),
        bits(&serial.link_bytes),
        "{what}: link bytes"
    );
    assert_eq!(
        bits(&parallel.cnp_per_port),
        bits(&serial.cnp_per_port),
        "{what}: cnp per port"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental and reference drains agree over random topologies, flow
    /// populations, fault injections, noise epochs and deadlines — and the
    /// incremental drain is bit-identical to itself at 2 and 4 threads.
    #[test]
    fn drain_agrees_with_reference(
        nodes in 2usize..5,
        n_flows in 1usize..28,
        seed in 0u64..1_000_000,
        noise_kind in 0usize..4,
        kill_links in 0usize..3,
        deadline_ms in 0u64..4,
    ) {
        let mut topo = Topology::build(&ClosConfig::tiny(nodes));
        let mut rng = DetRng::seed_from(seed);
        let specs = random_specs(&topo, &mut rng, n_flows, seed ^ 0xD1FF);

        // Fault injection: kill random links that flows actually cross, so
        // stalls and partial-capacity paths are exercised.
        for k in 0..kill_links {
            let victim = &specs[rng.index(specs.len())];
            if victim.route.is_empty() {
                continue;
            }
            let l = victim.route[rng.index(victim.route.len())];
            // Alternate between fully dead and degraded links.
            if k % 2 == 0 {
                topo.link_mut(l).set_up(false);
            } else {
                topo.link_mut(l).set_degradation(0.25);
            }
        }

        let cfg = DrainConfig {
            start: SimTime::ZERO,
            // Deadlines from "immediately" to "after every completion";
            // 0 means no deadline.
            deadline: (deadline_ms > 0)
                .then(|| SimTime::ZERO + SimDuration::from_millis(10u64.pow(deadline_ms as u32))),
            epoch: SimDuration::from_micros(500),
            rate_noise: [0.0, 0.1, 0.0, 0.25][noise_kind],
            cnp: (noise_kind >= 2).then(CnpModel::paper_default),
            parallel: ParallelPolicy::SERIAL,
            ..DrainConfig::default()
        };

        let mut rng_a = DetRng::seed_from(seed ^ 0xAAAA);
        let mut rng_b = DetRng::seed_from(seed ^ 0xAAAA);
        let inc = drain(&topo, &specs, &cfg, &mut rng_a);
        let reference = drain_reference(&topo, &specs, &cfg, &mut rng_b);
        assert_reports_agree(&inc, &reference, "random drain");

        // The same drain under worker threads: bit-identical, and the RNG
        // must end in the same position (same consumption order). The
        // incremental drain must also leave the RNG exactly where the
        // reference left its own — identical consumption order.
        let next_after_serial = rng_a.uniform();
        assert_eq!(
            next_after_serial.to_bits(),
            rng_b.uniform().to_bits(),
            "drain must consume the RNG in exactly the reference's order"
        );
        for threads in [2usize, 4] {
            let par_cfg = DrainConfig {
                parallel: ParallelPolicy::with_threads(threads),
                ..cfg.clone()
            };
            let mut rng_p = DetRng::seed_from(seed ^ 0xAAAA);
            let par = drain(&topo, &specs, &par_cfg, &mut rng_p);
            assert_reports_identical(&par, &inc, &format!("{threads}-thread drain"));
            assert_eq!(
                rng_p.uniform().to_bits(),
                next_after_serial.to_bits(),
                "thread count must not change RNG consumption"
            );
        }
    }

    /// The exact shared-fabric shape the collective engine produces: many
    /// same-sized flows completing in clustered groups under noise, the
    /// worst case for event-ordering divergence.
    #[test]
    fn drain_agrees_on_collective_shaped_populations(
        nodes in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        let topo = Topology::build(&ClosConfig::tiny(nodes));
        let mut rng = DetRng::seed_from(seed);
        // One "ring": every node boundary gets 2 QPs of identical size.
        let mut sel = EcmpSelector::new(seed);
        let mut specs = Vec::new();
        for n in 0..nodes {
            let src = topo.gpu_at(NodeId::from_index(n), 0);
            let dst = topo.gpu_at(NodeId::from_index((n + 1) % nodes), 0);
            if topo.gpu(src).node == topo.gpu(dst).node {
                continue;
            }
            for qp in 0..2u16 {
                let key = FlowKey {
                    src_gpu: src,
                    dst_gpu: dst,
                    comm: 9,
                    channel: n as u16,
                    qp,
                    incarnation: 0,
                };
                let choice = sel.select(&topo, &key);
                let sp = topo.port_of_gpu(src, choice.src_side);
                let dp = topo.port_of_gpu(dst, choice.dst_side);
                let route = topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst);
                specs.push(FlowSpec::new(key, ByteSize::from_mib(64), route));
            }
        }
        prop_assume!(!specs.is_empty());
        let cfg = DrainConfig {
            rate_noise: 0.15,
            cnp: Some(CnpModel::paper_default()),
            epoch: SimDuration::from_micros(200 + rng.index(2000) as u64),
            ..DrainConfig::default()
        };
        let mut rng_a = DetRng::seed_from(seed ^ 0xBBBB);
        let mut rng_b = DetRng::seed_from(seed ^ 0xBBBB);
        let inc = drain(&topo, &specs, &cfg, &mut rng_a);
        let reference = drain_reference(&topo, &specs, &cfg, &mut rng_b);
        assert_reports_agree(&inc, &reference, "collective-shaped drain");
        for threads in [2usize, 4] {
            let par_cfg = DrainConfig {
                parallel: ParallelPolicy::with_threads(threads),
                ..cfg.clone()
            };
            let mut rng_p = DetRng::seed_from(seed ^ 0xBBBB);
            let par = drain(&topo, &specs, &par_cfg, &mut rng_p);
            assert_reports_identical(
                &par,
                &inc,
                &format!("collective-shaped {threads}-thread drain"),
            );
        }
    }
}

/// Builds the noisy-at-scale worst case on a grouped pod: cross-group QP
/// pairs of identical size (same-instant completion batches), a sprinkle
/// of differently-sized and zero-byte flows, all contending on the spine.
fn grouped_pod_specs(topo: &Topology, seed: u64, streams: usize) -> Vec<FlowSpec> {
    let mut sel = EcmpSelector::new(seed ^ 0x5CA1E);
    let mut rng = DetRng::seed_from(seed);
    let nodes = topo.num_nodes();
    let mut specs = Vec::new();
    for s in 0..streams {
        // Source in group 0's half, destination in group 1's half, so every
        // stream crosses the spine layer (the giant shared component).
        let src = topo.gpu_at(NodeId::from_index(s % (nodes / 2)), s % 8);
        let dst = topo.gpu_at(
            NodeId::from_index(nodes / 2 + (s * 3) % (nodes / 2)),
            (s / 2) % 8,
        );
        let bytes = match s % 7 {
            // Mostly identical sizes: completions land in batches.
            0..=4 => ByteSize::from_mib(64),
            5 => ByteSize::from_mib(24 + (rng.index(8) as u64)),
            _ => ByteSize::ZERO,
        };
        for qp in 0..2u16 {
            let key = FlowKey {
                src_gpu: src,
                dst_gpu: dst,
                comm: 1 + (s % 8) as u64,
                channel: s as u16,
                qp,
                incarnation: 0,
            };
            let choice = sel.select(topo, &key);
            let sp = topo.port_of_gpu(src, choice.src_side);
            let dp = topo.port_of_gpu(dst, choice.dst_side);
            let route = topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst);
            specs.push(FlowSpec::new(key, bytes, route));
        }
    }
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Noisy-at-scale: the exact regime the event-driven engine was built
    /// for — epoch re-caps over a giant spine-shared component, same-size
    /// completion batches, and deadlines — pinned against the reference at
    /// 1e-9 with identical RNG consumption, and bit-identical to itself at
    /// 2 and 4 threads.
    #[test]
    fn drain_agrees_at_scale_under_noise_epochs_and_batches(
        seed in 0u64..1_000_000,
        streams in 8usize..48,
        noise_kind in 0usize..3,
        deadline_case in 0usize..3,
    ) {
        let topo = Topology::build(&ClosConfig::pod_grouped(16, 2));
        let specs = grouped_pod_specs(&topo, seed, streams);
        let cfg = DrainConfig {
            start: SimTime::ZERO,
            // Deadlines from "cuts the drain mid-flight" to "after every
            // completion"; 0 = none.
            deadline: (deadline_case > 0).then(|| {
                SimTime::ZERO + SimDuration::from_millis(4u64.pow(deadline_case as u32 + 1))
            }),
            // Epochs short enough that every drain re-caps many times.
            epoch: SimDuration::from_micros(400),
            rate_noise: [0.04, 0.10, 0.25][noise_kind],
            cnp: Some(CnpModel::paper_default()),
            parallel: ParallelPolicy::SERIAL,
            ..DrainConfig::default()
        };
        let mut rng_a = DetRng::seed_from(seed ^ 0xCCCC);
        let mut rng_b = DetRng::seed_from(seed ^ 0xCCCC);
        let inc = drain(&topo, &specs, &cfg, &mut rng_a);
        let reference = drain_reference(&topo, &specs, &cfg, &mut rng_b);
        assert_reports_agree(&inc, &reference, "noisy-at-scale drain");
        let next_after_serial = rng_a.uniform();
        assert_eq!(
            next_after_serial.to_bits(),
            rng_b.uniform().to_bits(),
            "noisy-at-scale drain must match the reference's RNG position"
        );
        for threads in [2usize, 4] {
            let par_cfg = DrainConfig {
                parallel: ParallelPolicy::with_threads(threads),
                ..cfg.clone()
            };
            let mut rng_p = DetRng::seed_from(seed ^ 0xCCCC);
            let par = drain(&topo, &specs, &par_cfg, &mut rng_p);
            assert_reports_identical(
                &par,
                &inc,
                &format!("noisy-at-scale {threads}-thread drain"),
            );
            assert_eq!(
                rng_p.uniform().to_bits(),
                next_after_serial.to_bits(),
                "thread count must not change RNG consumption at scale"
            );
        }
    }
}

/// Builds a flow population spread over every leaf group of a 16k-shaped
/// railed fabric: cross-group QP pairs in identical-size batches plus a
/// sprinkle of odd sizes and zero-byte flows, so the spine trunks form the
/// giant component and completions land in same-instant batches.
fn railed_16k_specs(topo: &Topology, seed: u64, streams: usize) -> Vec<FlowSpec> {
    let mut sel = EcmpSelector::new(seed ^ 0x16_000);
    let mut rng = DetRng::seed_from(seed);
    let nodes = topo.num_nodes();
    let mut specs = Vec::new();
    for s in 0..streams {
        // Source and destination stride through all 8 groups (node blocks),
        // so streams cross the spine layer in every direction.
        let src = topo.gpu_at(NodeId::from_index((s * 131) % nodes), s % 8);
        let dst_node = (s * 257 + nodes / 2) % nodes;
        let dst = topo.gpu_at(
            NodeId::from_index(if dst_node == (s * 131) % nodes {
                (dst_node + 1) % nodes
            } else {
                dst_node
            }),
            (s / 3) % 8,
        );
        let bytes = match s % 7 {
            0..=4 => ByteSize::from_mib(64),
            5 => ByteSize::from_mib(24 + (rng.index(8) as u64)),
            _ => ByteSize::ZERO,
        };
        for qp in 0..2u16 {
            let key = FlowKey {
                src_gpu: src,
                dst_gpu: dst,
                comm: 1 + (s % 8) as u64,
                channel: s as u16,
                qp,
                incarnation: 0,
            };
            let choice = sel.select(topo, &key);
            let sp = topo.port_of_gpu(src, choice.src_side);
            let dp = topo.port_of_gpu(dst, choice.dst_side);
            let route = topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst);
            specs.push(FlowSpec::new(key, bytes, route));
        }
    }
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The hierarchical/SoA solve path at the 16k shape: drains on the
    /// 16384-GPU `pod_grouped_railed` fabric (128 rail-dense leaves, wide
    /// spine trunks) with noise epochs, same-size completion batches and
    /// killed links — completions trigger the pod-level component splits
    /// and dead links produce quiescent husks. Incremental == reference at
    /// 1e-9 with identical RNG consumption; 1/2/4-thread bit-identity.
    #[test]
    fn drain_agrees_on_16k_shaped_railed_fabric(
        seed in 0u64..1_000_000,
        streams in 12usize..40,
        noise_kind in 0usize..3,
        kill_links in 0usize..3,
    ) {
        let mut topo = Topology::build(&ClosConfig::pod_grouped_railed(2048, 8));
        let specs = railed_16k_specs(&topo, seed, streams);
        prop_assume!(!specs.is_empty());

        // Kill links flows actually cross: stalled flows turn their
        // components fully dead (husks) while survivors re-partition.
        let mut rng = DetRng::seed_from(seed ^ 0xDEAD);
        for k in 0..kill_links {
            let victim = &specs[rng.index(specs.len())];
            if victim.route.is_empty() {
                continue;
            }
            let l = victim.route[rng.index(victim.route.len())];
            if k % 2 == 0 {
                topo.link_mut(l).set_up(false);
            } else {
                topo.link_mut(l).set_degradation(0.25);
            }
        }

        let cfg = DrainConfig {
            start: SimTime::ZERO,
            deadline: None,
            epoch: SimDuration::from_micros(400),
            rate_noise: [0.04, 0.10, 0.25][noise_kind],
            cnp: Some(CnpModel::paper_default()),
            parallel: ParallelPolicy::SERIAL,
            ..DrainConfig::default()
        };
        let mut rng_a = DetRng::seed_from(seed ^ 0x16AA);
        let mut rng_b = DetRng::seed_from(seed ^ 0x16AA);
        let inc = drain(&topo, &specs, &cfg, &mut rng_a);
        let reference = drain_reference(&topo, &specs, &cfg, &mut rng_b);
        assert_reports_agree(&inc, &reference, "16k-shaped drain");
        let next_after_serial = rng_a.uniform();
        assert_eq!(
            next_after_serial.to_bits(),
            rng_b.uniform().to_bits(),
            "16k-shaped drain must match the reference's RNG position"
        );
        for threads in [2usize, 4] {
            let par_cfg = DrainConfig {
                parallel: ParallelPolicy::with_threads(threads),
                ..cfg.clone()
            };
            let mut rng_p = DetRng::seed_from(seed ^ 0x16AA);
            let par = drain(&topo, &specs, &par_cfg, &mut rng_p);
            assert_reports_identical(
                &par,
                &inc,
                &format!("16k-shaped {threads}-thread drain"),
            );
            assert_eq!(
                rng_p.uniform().to_bits(),
                next_after_serial.to_bits(),
                "thread count must not change RNG consumption at the 16k shape"
            );
        }
    }
}

/// A deterministic end-to-end spot check through the collective engine: the
/// engine's own drains (which now run incrementally) reproduce the
/// reference solver's allocation for a full allreduce flow set.
#[test]
fn engine_flows_agree_with_reference_end_to_end() {
    let topo = Topology::build(&ClosConfig::tiny(3));
    let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
    let comm = Communicator::new(1, devices, &topo).expect("valid communicator");
    let req = CollectiveRequest {
        comm: &comm,
        seq: 0,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 4 * 1024 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig {
            rate_noise: 0.1,
            cnp: Some(CnpModel::paper_default()),
            ..DrainConfig::default()
        },
    };
    let mut sel = EcmpSelector::new(3);
    let mut rng = DetRng::seed_from(11);
    let result = run_collective(&topo, &req, &mut sel, None, &mut rng, None);
    assert!(!result.hung());

    // Rebuild the same flow set and compare both drain implementations.
    let specs: Vec<FlowSpec> = result
        .intra_outcomes
        .iter()
        .chain(&result.qp_outcomes)
        .map(|o| {
            let src = o.key.src_gpu;
            let dst = o.key.dst_gpu;
            let route = if topo.gpu(src).node == topo.gpu(dst).node {
                topo.intra_node_route(src, dst)
            } else {
                let mut sel = EcmpSelector::new(3);
                let choice = sel.select(&topo, &o.key);
                let sp = topo.port_of_gpu(src, choice.src_side);
                let dp = topo.port_of_gpu(dst, choice.dst_side);
                topo.inter_node_route(src, sp, choice.fabric.as_ref(), dp, dst)
            };
            FlowSpec::new(o.key, o.bytes, route)
        })
        .collect();
    let cfg = req.drain.clone();
    let mut rng_a = DetRng::seed_from(42);
    let mut rng_b = DetRng::seed_from(42);
    let inc = drain(&topo, &specs, &cfg, &mut rng_a);
    let reference = drain_reference(&topo, &specs, &cfg, &mut rng_b);
    assert_reports_agree(&inc, &reference, "engine allreduce flow set");
}

/// Builds fully pod-disjoint "jobs": per selected node, two equal-size QPs
/// over the same intra-node NVLink route. Jobs on different nodes share no
/// links at all, so each is its own solver component — and equal sizes make
/// their completions land at exactly the same instant across components.
fn disjoint_pod_specs(topo: &Topology, jobs: usize) -> Vec<FlowSpec> {
    let mut specs = Vec::new();
    for j in 0..jobs {
        let src = topo.gpu_at(NodeId::from_index(j), 0);
        let dst = topo.gpu_at(NodeId::from_index(j), 1);
        let route = topo.intra_node_route(src, dst);
        // Two size classes → two distinct cross-component batch instants.
        let bytes = if j % 2 == 0 {
            ByteSize::from_mib(64)
        } else {
            ByteSize::from_mib(32)
        };
        for qp in 0..2u16 {
            let key = FlowKey {
                src_gpu: src,
                dst_gpu: dst,
                comm: 1 + j as u64,
                channel: j as u16,
                qp,
                incarnation: 0,
            };
            specs.push(FlowSpec::new(key, bytes, route.clone()));
        }
    }
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cross-component same-instant batching: disjoint-pod jobs with
    /// equal-size flows complete at one instant in *different* components,
    /// and the completion step must batch all of their removals into one
    /// re-solve. Pinned three ways: drain == reference rates, RNG position
    /// bit-for-bit, and 1/2/4-thread bit-identity — plus, on the noiseless
    /// cases, the solver stats must show the batches actually formed.
    #[test]
    fn drain_batches_same_instant_completions_across_components(
        jobs in 4usize..13,
        seed in 0u64..1_000_000,
        noise_kind in 0usize..3,
    ) {
        let topo = Topology::build(&ClosConfig::pod_grouped(16, 2));
        let specs = disjoint_pod_specs(&topo, jobs);
        let cfg = DrainConfig {
            epoch: SimDuration::from_micros(500),
            rate_noise: [0.0, 0.1, 0.25][noise_kind],
            cnp: (noise_kind > 0).then(CnpModel::paper_default),
            ..DrainConfig::default()
        };
        let mut rng_a = DetRng::seed_from(seed ^ 0xBA7C);
        let mut rng_b = DetRng::seed_from(seed ^ 0xBA7C);
        let inc = drain(&topo, &specs, &cfg, &mut rng_a);
        let reference = drain_reference(&topo, &specs, &cfg, &mut rng_b);
        assert_reports_agree(&inc, &reference, "disjoint-pod batched drain");
        let next_after_serial = rng_a.uniform();
        assert_eq!(
            next_after_serial.to_bits(),
            rng_b.uniform().to_bits(),
            "batched drain must consume the RNG in exactly the reference's order"
        );

        if noise_kind == 0 {
            // Without noise every job of a size class completes at the same
            // instant: two classes → exactly two batched instants covering
            // all but one completion each.
            assert_eq!(
                inc.solver.batched_instants, 2,
                "expected both size-class completion waves to batch: {:?}",
                inc.solver
            );
            assert_eq!(
                inc.solver.batched_completions,
                (2 * jobs - 2) as u64,
                "every completion but one per wave rides a batch: {:?}",
                inc.solver
            );
        }

        for threads in [2usize, 4] {
            let par_cfg = DrainConfig {
                parallel: ParallelPolicy::with_threads(threads),
                ..cfg.clone()
            };
            let mut rng_p = DetRng::seed_from(seed ^ 0xBA7C);
            let par = drain(&topo, &specs, &par_cfg, &mut rng_p);
            assert_reports_identical(
                &par,
                &inc,
                &format!("disjoint-pod {threads}-thread drain"),
            );
            assert_eq!(
                rng_p.uniform().to_bits(),
                next_after_serial.to_bits(),
                "thread count must not change RNG consumption in batched drains"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The two-tier spine solve stays within its configured ε of the exact
    /// allocation on 16k-shaped railed fabrics, from the initial solve and
    /// through long completion scripts — and is deterministic (two states
    /// fed the same script stay bit-identical).
    #[test]
    fn two_tier_rates_stay_within_epsilon_of_exact(
        seed in 0u64..1_000_000,
        streams in 12usize..32,
        eps_kind in 0usize..2,
    ) {
        let topo = Topology::build(&ClosConfig::pod_grouped_railed(2048, 8));
        let specs = railed_16k_specs(&topo, seed, streams);
        prop_assume!(!specs.is_empty());
        let epsilon = [0.01, 0.05][eps_kind];

        let nl = topo.num_links();
        let capacity: Vec<f64> = (0..nl)
            .map(|l| {
                topo.link(LinkId::from_index(l))
                    .capacity()
                    .as_bytes_per_sec()
            })
            .collect();
        let spine: Vec<bool> = (0..nl)
            .map(|l| topo.link(LinkId::from_index(l)).kind().is_fabric())
            .collect();
        let routes: Vec<Vec<u32>> = specs
            .iter()
            .map(|s| {
                let mut r: Vec<u32> = s.route.iter().map(|l| l.index() as u32).collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();

        let mut exact = MaxMinState::with_flows(&capacity, &routes, None)
            .with_parallel(ParallelPolicy::SERIAL);
        let make_tt = || {
            let mut s = MaxMinState::with_flows(&capacity, &routes, None)
                .with_parallel(ParallelPolicy::SERIAL)
                .with_solve_mode(SolveMode::TwoTier { epsilon });
            s.set_spine_links(&spine);
            s
        };
        let mut tt = make_tt();
        let mut tt_witness = make_tt();

        let assert_eps = |approx: &[f64], exact: &[f64], what: &str| {
            for (f, (&a, &b)) in approx.iter().zip(exact).enumerate() {
                let err = (a - b).abs() / a.abs().max(b.abs()).max(1.0);
                assert!(
                    err <= epsilon + 1e-9,
                    "{what}: flow {f} two-tier {a} vs exact {b} (rel err {err} > ε {epsilon})"
                );
            }
        };

        assert_eps(&tt.rates().to_vec(), exact.rates(), "initial solve");
        assert_rates_bit_identical(
            tt_witness.rates(),
            tt.rates(),
            "two-tier witness after initial solve",
        );

        // Completion script: remove flows in small batches, exactly the
        // mutation stream a drain feeds the solver.
        let mut rng = DetRng::seed_from(seed ^ 0x271E);
        let mut alive: Vec<usize> = (0..specs.len()).collect();
        let mut step = 0usize;
        while alive.len() > specs.len() / 4 {
            let batch = 1 + rng.index(4.min(alive.len()));
            for _ in 0..batch {
                let pick = rng.index(alive.len());
                let f = alive.swap_remove(pick);
                exact.remove_flow(f);
                tt.remove_flow(f);
                tt_witness.remove_flow(f);
            }
            step += 1;
            assert_eps(
                &tt.rates().to_vec(),
                exact.rates(),
                &format!("after completion batch {step}"),
            );
            assert_rates_bit_identical(
                tt_witness.rates(),
                tt.rates(),
                &format!("two-tier witness after batch {step}"),
            );
        }
    }

    /// End-to-end: a two-tier drain on the 16k shape completes the same
    /// flows as the exact drain with completion times within a few ε, is
    /// bit-identical to itself, and actually exercises the sparse path.
    #[test]
    fn two_tier_drain_tracks_exact_on_16k_shape(
        seed in 0u64..1_000_000,
        streams in 12usize..24,
    ) {
        let topo = Topology::build(&ClosConfig::pod_grouped_railed(2048, 8));
        let specs = railed_16k_specs(&topo, seed, streams);
        prop_assume!(!specs.is_empty());

        let cfg_exact = DrainConfig::default();
        let cfg_tt = DrainConfig {
            solve_mode: SolveMode::TwoTier { epsilon: 0.01 },
            ..DrainConfig::default()
        };
        let ex = drain(&topo, &specs, &cfg_exact, &mut DetRng::seed_from(seed));
        let tt = drain(&topo, &specs, &cfg_tt, &mut DetRng::seed_from(seed));
        let tt_again = drain(&topo, &specs, &cfg_tt, &mut DetRng::seed_from(seed));

        assert_eq!(ex.outcomes.len(), tt.outcomes.len());
        let secs = |t: SimTime| (t - SimTime::ZERO).as_secs_f64();
        for (f, (a, b)) in tt.outcomes.iter().zip(&ex.outcomes).enumerate() {
            assert_eq!(
                a.completed(),
                b.completed(),
                "two-tier vs exact: flow {f} completion"
            );
            if let (Some(x), Some(y)) = (a.finish, b.finish) {
                let (x, y) = (secs(x), secs(y));
                let err = (x - y).abs() / x.abs().max(y.abs()).max(1e-9);
                assert!(
                    err <= 0.05,
                    "two-tier finish {x} drifted {err} from exact {y} (flow {f})"
                );
            }
        }
        assert_reports_identical(&tt_again, &tt, "two-tier repeat run");
        if tt.solver.events >= 3 {
            assert!(
                tt.solver.sparse_solves >= 1,
                "two-tier drain never took the sparse path: {:?}",
                tt.solver
            );
        }

        for threads in [2usize, 4] {
            let par_cfg = DrainConfig {
                parallel: ParallelPolicy::with_threads(threads),
                ..cfg_tt.clone()
            };
            let par = drain(&topo, &specs, &par_cfg, &mut DetRng::seed_from(seed));
            assert_reports_identical(
                &par,
                &tt,
                &format!("two-tier {threads}-thread drain"),
            );
        }

        // The noisy/CNP two-tier path (sparse cap redraws on the epoch
        // cadence, episodic CNP integration) must stay deterministic and
        // thread-invariant too, and every flow must still complete on a
        // healthy fabric.
        let cfg_noisy = DrainConfig {
            rate_noise: 0.10,
            cnp: Some(CnpModel::paper_default()),
            solve_mode: SolveMode::TwoTier { epsilon: 0.01 },
            ..DrainConfig::default()
        };
        let nz = drain(&topo, &specs, &cfg_noisy, &mut DetRng::seed_from(seed));
        let nz_again = drain(&topo, &specs, &cfg_noisy, &mut DetRng::seed_from(seed));
        assert_reports_identical(&nz_again, &nz, "noisy two-tier repeat run");
        for o in &nz.outcomes {
            assert!(o.completed(), "noisy two-tier drain must complete flows");
        }
        let nz_par = drain(
            &topo,
            &specs,
            &DrainConfig {
                parallel: ParallelPolicy::with_threads(4),
                ..cfg_noisy.clone()
            },
            &mut DetRng::seed_from(seed),
        );
        assert_reports_identical(&nz_par, &nz, "noisy two-tier 4-thread drain");
        assert!(
            nz.cnp_per_port.iter().any(|&c| c > 0.0),
            "congested railed traffic must accumulate CNPs episodically"
        );
    }
}
