//! Integration: headline paper claims checked end-to-end, plus determinism
//! guarantees the whole reproduction depends on.

use c4::prelude::*;
use c4::scenarios;

#[test]
fn abstract_claim_error_overhead_drops_about_thirty_fold() {
    // "a significant improvement in system efficiency ... attributed to a
    // 30% reduction in error-induced overhead".
    let (june, dec) = scenarios::tables::table3(7);
    assert!(june.downtime_fraction() > 0.20, "pre-C4 ≈ 31%");
    assert!(dec.downtime_fraction() < 0.04, "post-C4 ≈ 1.2%");
    let recovered = june.downtime_fraction() - dec.downtime_fraction();
    assert!(
        recovered > 0.18,
        "C4 recovers ≈30% of GPU time, got {recovered:.3}"
    );
}

#[test]
fn abstract_claim_communication_gain_for_comm_heavy_jobs() {
    // "improves the system throughput by approximately 15%" for jobs with
    // moderate communication cost.
    let rows = scenarios::fig14::run(11, 3);
    assert!(
        rows[0].improvement > 0.10 && rows[0].improvement < 0.25,
        "Job1 gain {:.3} (paper 0.1595)",
        rows[0].improvement
    );
    assert!(
        rows[1].improvement > 0.09 && rows[1].improvement < 0.25,
        "Job2 gain {:.3} (paper 0.141)",
        rows[1].improvement
    );
    assert!(
        rows[2].improvement.abs() < 0.06,
        "Job3 gain {:.3} (paper ≈0)",
        rows[2].improvement
    );
}

#[test]
fn majority_of_crashes_are_node_local() {
    // Table I: ~82.5% of crashes confined to a node — the fact that makes
    // isolate-and-restart worthwhile.
    let report = scenarios::tables::table1(3);
    let local = report.crashes.iter().filter(|c| c.local).count();
    let frac = local as f64 / report.crashes.len() as f64;
    assert!((0.65..=0.95).contains(&frac), "local fraction {frac:.2}");
    // And they present as opaque NCCL errors pre-diagnosis.
    let nccl = report
        .crashes
        .iter()
        .filter(|c| c.user_view == UserView::NcclError)
        .count();
    assert!(nccl as f64 / report.crashes.len() as f64 > 0.8);
}

#[test]
fn same_seed_reproduces_identical_experiments() {
    let a = scenarios::fig9::run(99, 2);
    let b = scenarios::fig9::run(99, 2);
    assert_eq!(a, b, "figure scenarios are bit-deterministic per seed");

    let (j1, d1) = scenarios::tables::table3(55);
    let (j2, d2) = scenarios::tables::table3(55);
    assert_eq!(j1.crashes, j2.crashes);
    assert_eq!(d1.crashes, d2.crashes);
}

#[test]
fn different_seeds_vary_but_keep_the_shape() {
    for seed in [1u64, 2, 3] {
        let rows = scenarios::fig9::run(seed, 2);
        for r in rows {
            assert!(r.baseline_gbps < 260.0, "seed {seed}: {}", r.baseline_gbps);
            assert!(r.c4p_gbps > 340.0, "seed {seed}: {}", r.c4p_gbps);
        }
    }
}

#[test]
fn nvlink_cap_binds_exactly_at_362() {
    // Single-node collective: pure NVLink, busbw = 362 (the §IV-B2 cap).
    let topo = Topology::build(&ClosConfig::testbed_128());
    let comm = Communicator::new(1, topo.node(NodeId::from_index(0)).gpus.clone(), &topo).unwrap();
    let req = CollectiveRequest {
        comm: &comm,
        seq: 0,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 256 * 1024 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig::default(),
    };
    let mut sel = RailLocalSelector::new();
    let mut rng = DetRng::seed_from(1);
    let res = run_collective(&topo, &req, &mut sel, None, &mut rng, None);
    assert!((res.busbw_gbps().unwrap() - 362.0).abs() < 1.0);
}

#[test]
fn collective_kinds_scale_edge_traffic_correctly() {
    // ZeRO's reduce-scatter + allgather moves the same bytes as allreduce.
    let topo = Topology::build(&ClosConfig::testbed_128());
    let comm = Communicator::new(
        1,
        (0..2)
            .flat_map(|n| topo.node(NodeId::from_index(n)).gpus.clone())
            .collect(),
        &topo,
    )
    .unwrap();
    let run = |kind: CollKind| {
        let req = CollectiveRequest {
            comm: &comm,
            seq: 0,
            kind,
            dtype: DataType::Bf16,
            count: 128 * 1024 * 1024,
            config: CommConfig::default(),
            start: SimTime::ZERO,
            rank_ready: None,
            drain: DrainConfig::default(),
        };
        let mut sel = RailLocalSelector::new();
        let mut rng = DetRng::seed_from(1);
        run_collective(&topo, &req, &mut sel, None, &mut rng, None)
    };
    let ar = run(CollKind::AllReduce);
    let rs = run(CollKind::ReduceScatter);
    let ag = run(CollKind::AllGather);
    let combined = rs.duration().unwrap() + ag.duration().unwrap();
    let allreduce = ar.duration().unwrap();
    let diff = (combined.as_secs_f64() - allreduce.as_secs_f64()).abs();
    assert!(
        diff < allreduce.as_secs_f64() * 0.02,
        "RS+AG ≈ AR on the wire: {combined} vs {allreduce}"
    );
}

#[test]
fn checkpoint_cadence_controls_post_checkpoint_loss() {
    // Fig 2 economics: denser checkpoints shrink exactly one bucket.
    let mut sparse = OperationConfig::june_2023_175b();
    sparse.recovery.checkpoint_interval = SimDuration::from_hours(8);
    let mut dense = OperationConfig::june_2023_175b();
    dense.recovery.checkpoint_interval = SimDuration::from_mins(10);
    let a = simulate_operation(&sparse, 13);
    let b = simulate_operation(&dense, 13);
    assert!(
        a.post_checkpoint_fraction() > b.post_checkpoint_fraction() * 5.0,
        "sparse {:.4} vs dense {:.4}",
        a.post_checkpoint_fraction(),
        b.post_checkpoint_fraction()
    );
}
