//! Property-based tests over the public API: bandwidth-sharing invariants,
//! delay-matrix localization, plan construction, and unit arithmetic.

use c4::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-min allocation is always feasible and leaves every flow
    /// bottlenecked somewhere (the definition of max-min fairness).
    #[test]
    fn maxmin_is_feasible_and_bottlenecked(
        caps in prop::collection::vec(1.0_f64..500.0, 2..24),
        routes in prop::collection::vec(
            prop::collection::vec(0usize..24, 1..5),
            1..40,
        ),
    ) {
        let nl = caps.len();
        let routes: Vec<Vec<u32>> = routes
            .into_iter()
            .map(|r| r.into_iter().map(|l| (l % nl) as u32).collect())
            .collect();
        let rates = maxmin::solve(&caps, &routes, None);
        prop_assert_eq!(rates.len(), routes.len());
        let residual = maxmin::residual(&caps, &routes, &rates);
        for (l, r) in residual.iter().enumerate() {
            prop_assert!(*r >= -1e-6, "link {} oversubscribed by {}", l, r);
        }
        for (f, route) in routes.iter().enumerate() {
            prop_assert!(rates[f] > 0.0, "flow {} starved", f);
            let tight = route
                .iter()
                .any(|&l| residual[l as usize] <= 1e-6 * caps[l as usize].max(1.0));
            prop_assert!(tight, "flow {} has slack everywhere", f);
        }
    }

    /// Rate caps are respected and never reduce another flow's allocation.
    #[test]
    fn maxmin_caps_only_help_others(
        cap_value in 1.0_f64..50.0,
        n_flows in 2usize..12,
    ) {
        let caps_links = vec![100.0_f64];
        let routes: Vec<Vec<u32>> = (0..n_flows).map(|_| vec![0u32]).collect();
        let uncapped = maxmin::solve(&caps_links, &routes, None);
        let mut flow_caps = vec![f64::INFINITY; n_flows];
        flow_caps[0] = cap_value;
        let capped = maxmin::solve(&caps_links, &routes, Some(&flow_caps));
        prop_assert!(capped[0] <= cap_value + 1e-9);
        for f in 1..n_flows {
            prop_assert!(capped[f] + 1e-9 >= uncapped[f]);
        }
    }

    /// A single anomalous cell is always localized as that connection (or
    /// escalated to its row/column when the matrix is tiny).
    #[test]
    fn delay_matrix_localizes_any_single_cell(
        n in 4usize..16,
        src in 0usize..16,
        dst in 0usize..16,
        factor in 3.0_f64..20.0,
    ) {
        let (src, dst) = (src % n, dst % n);
        prop_assume!(src != dst);
        let mut m = DelayMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, 0.01);
                }
            }
        }
        m.set(src, dst, 0.01 * factor);
        let findings = m.analyze(2.0, 0.7);
        prop_assert_eq!(findings.len(), 1);
        match findings[0] {
            MatrixFinding::ConnectionSlow { src: s, dst: d, ratio } => {
                prop_assert_eq!((s as usize, d as usize), (src, dst));
                prop_assert!((ratio - factor).abs() < 0.2);
            }
            f => prop_assert!(false, "unexpected finding {:?}", f),
        }
    }

    /// Ring plans conserve structure for any contiguous placement: every
    /// boundary stream's two proxies share a rail, and intra edges chain
    /// each node's members exactly once.
    #[test]
    fn ring_plan_structure_holds(nodes in 1usize..8, comm_id in 1u64..1000) {
        let topo = Topology::build(&ClosConfig::testbed_128());
        let devices: Vec<GpuId> = (0..nodes)
            .flat_map(|n| topo.node(NodeId::from_index(n)).gpus.clone())
            .collect();
        let comm = Communicator::new(comm_id, devices, &topo).unwrap();
        let plan = RingPlan::build(&topo, &comm);
        prop_assert_eq!(plan.intra_edges.len(), nodes * 7);
        let expected_boundaries = if nodes > 1 { nodes * 8 } else { 0 };
        prop_assert_eq!(plan.boundaries.len(), expected_boundaries);
        for b in &plan.boundaries {
            let rail_src = topo.nic(topo.gpu(b.src_gpu).nic).local_index;
            let rail_dst = topo.nic(topo.gpu(b.dst_gpu).nic).local_index;
            prop_assert_eq!(rail_src, b.rail);
            prop_assert_eq!(rail_dst, b.rail);
            prop_assert_ne!(b.src_node, b.dst_node);
        }
    }

    /// Byte sizes split without loss for any size/parts combination.
    #[test]
    fn byte_split_conserves_total(bytes in 0u64..1_000_000_000, parts in 1usize..64) {
        let total = ByteSize::from_bytes(bytes);
        let split = total.split(parts);
        prop_assert_eq!(split.len(), parts.max(1));
        prop_assert_eq!(split.iter().copied().sum::<ByteSize>(), total);
        let min = split.iter().min().unwrap().as_bytes();
        let max = split.iter().max().unwrap().as_bytes();
        prop_assert!(max - min <= 1);
    }

    /// Transfer time inverts bandwidth within float tolerance.
    #[test]
    fn transfer_time_round_trips(mib in 1u64..4096, gbps in 1.0_f64..400.0) {
        let size = ByteSize::from_mib(mib);
        let rate = Bandwidth::from_gbps(gbps);
        let t = size.transfer_time(rate).as_secs_f64();
        let implied_gbps = size.as_bytes() as f64 * 8.0 / t / 1e9;
        prop_assert!((implied_gbps - gbps).abs() < gbps * 1e-6);
    }

    /// Fault injection respects the horizon and keeps events ordered for
    /// any job size.
    #[test]
    fn fault_schedules_are_ordered_and_bounded(
        gpus in 64usize..8192,
        seed in 0u64..1000,
    ) {
        let nodes = gpus / 8;
        let mut inj = FaultInjector::new(FaultRates::june_2023(), seed);
        let horizon = SimDuration::from_hours(720);
        let events = inj.schedule_crashes(gpus, nodes, 8, SimTime::ZERO, horizon);
        for w in events.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for e in &events {
            prop_assert!(e.time < SimTime::ZERO + horizon);
            prop_assert!(e.kind.is_crash());
            if let Some(n) = e.node {
                prop_assert!(n.index() < nodes);
            }
        }
    }

    /// The ECMP digest is stable and salt-sensitive for arbitrary keys.
    #[test]
    fn flow_key_digest_properties(
        src in 0u32..4096,
        dst in 0u32..4096,
        comm in 0u64..u64::MAX,
        salt_a in 0u64..u64::MAX,
        salt_b in 0u64..u64::MAX,
    ) {
        prop_assume!(salt_a != salt_b);
        let key = FlowKey {
            src_gpu: GpuId(src),
            dst_gpu: GpuId(dst),
            comm,
            channel: 0,
            qp: 0,
            incarnation: 0,
        };
        prop_assert_eq!(key.digest(salt_a), key.digest(salt_a));
        // Not a cryptographic guarantee, but collisions between two salts
        // on the same key should be vanishingly rare for splitmix-quality
        // mixing.
        prop_assert_ne!(key.digest(salt_a), key.digest(salt_b));
    }
}
