//! Integration: the offline side of C4D — background root-cause analysis
//! and the master-side cluster summary — fed by a real simulated incident.

use c4::prelude::*;

/// Runs a job into a dead-NIC hang and returns what C4D's master saw.
fn hang_incident() -> (Topology, CommRecord, Vec<TelemetrySnapshot>, SimTime) {
    let mut topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let spec = JobSpec::gpt22b_tp8_dp16();
    let nodes: Vec<NodeId> = (0..16).map(NodeId::from_index).collect();
    let layout = ParallelLayout::place(&topo, &spec, nodes).expect("placement");
    let mut job = TrainingJob::new(&topo, spec, layout, 300);
    job.comm_deadline = SimDuration::from_secs(45);
    let mut telemetry: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    job.register_telemetry(&topo, &mut telemetry);
    let mut sel = RailLocalSelector::new();
    let mut rng = DetRng::seed_from(21);
    for _ in 0..2 {
        job.run_iteration(&topo, &mut sel, None, &mut rng, &[], Some(&mut telemetry));
    }
    // Kill node 11's rail-6 NIC entirely.
    let g = topo.gpu_at(NodeId::from_index(11), 6);
    for side in PortSide::BOTH {
        Degradation::nic_half_down(topo.port_of_gpu(g, side)).apply(&mut topo);
    }
    let report = job.run_iteration(&topo, &mut sel, None, &mut rng, &[], Some(&mut telemetry));
    assert!(report.hung);
    let comm = &job.comms()[6];
    let rec = CommRecord {
        comm: comm.id(),
        devices: comm.devices().to_vec(),
        created: SimTime::ZERO,
    };
    let at = job.now() + SimDuration::from_secs(30);
    let snaps: Vec<TelemetrySnapshot> = comm
        .devices()
        .iter()
        .map(|g| telemetry[g.index()].snapshot(at))
        .collect();
    (topo, rec, snaps, at)
}

#[test]
fn rca_blames_the_transport_for_a_dead_nic() {
    let (topo, rec, snaps, at) = hang_incident();
    let mut master = C4dMaster::new(DetectorConfig::default());
    let diags = master.scan(at, &topo, &rec, &snaps);
    let hang = diags.iter().find(|d| d.critical).expect("hang detected");

    let rca = analyze_root_cause(&rec, &snaps, &hang.syndrome);
    // A NIC that died mid-run presents as an RDMA-transport loss, not a
    // library timeout and not user code.
    assert_eq!(rca.probable_cause(), FaultKind::AckTimeout);
    assert!(rca.hypotheses.len() >= 2, "alternatives listed");
    let total: f64 = rca.hypotheses.iter().map(|h| h.confidence).sum();
    assert!(total <= 1.0 + 1e-9);
    // Consistent with Table I: the user-facing string for this class is the
    // opaque NCCL error.
    assert_eq!(rca.probable_cause().user_view(), UserView::NcclError);
}

#[test]
fn cluster_summary_flags_the_outstanding_collective() {
    let (_topo, _rec, snaps, _at) = hang_incident();
    let summary = ClusterSummary::from_snapshots(&snaps);
    assert_eq!(summary.workers, 16);
    assert!(
        summary.in_flight >= 16,
        "the hung sync is outstanding everywhere"
    );
    assert!(summary.bytes > 0);
    let text = summary.to_text();
    assert!(
        text.contains("WARNING"),
        "summary.txt warns operators:\n{text}"
    );
}

#[test]
fn csv_artifacts_render_for_every_stream() {
    let (_topo, _rec, snaps, _at) = hang_incident();
    // The per-worker artifact set of Fig 5 renders without panicking and
    // with consistent column counts.
    let snap = &snaps[0];
    let comm_csv = to_csv_document(&snap.comms);
    let coll_csv = to_csv_document(&snap.colls);
    let conn_csv = to_csv_document(&snap.conns);
    let rank_csv = to_csv_document(&snap.ranks);
    for (doc, name) in [
        (&comm_csv, "comm"),
        (&coll_csv, "coll"),
        (&conn_csv, "conn"),
        (&rank_csv, "rank"),
    ] {
        let mut lines = doc.lines();
        let header_cols = lines.next().expect("header").split(',').count();
        for l in lines {
            assert_eq!(
                l.split(',').count(),
                header_cols,
                "{name}-stats.csv row width"
            );
        }
    }
}
