//! The stream == batch differential: the streaming detection path must be a
//! drop-in for the matrix reference on real scenario traffic.
//!
//! Pins, exactly:
//!
//! * Fig 12 traffic (spine kill mid-run): the batch `C4dMaster`, the
//!   streaming master on the live canonical event feed, and the streaming
//!   master on a CSV round trip of that feed produce identical diagnoses
//!   and identical `events.csv` logs;
//! * hybrid EP-imbalance traffic: the streamed window-1 and window-W
//!   detectors reproduce the batch `raw_straggler` / `LoadSmoother`
//!   verdicts field-for-field, and replaying the recorded load stream
//!   through fresh detectors reproduces every verdict **bit-identically**
//!   (f64 ratios compared by `to_bits`);
//! * the event-stream CSV itself is lossless — parsing the recorded
//!   document yields the original event vector.

use c4::prelude::*;
use c4::scenarios::fig12;
use c4::scenarios::hybrid::{run_ep_imbalance, stream_ep_verdicts, EpImbalanceConfig};

/// Fig 12 spine-kill traffic: batch scan == live stream == CSV replay,
/// diagnoses and event logs both.
#[test]
fn fig12_stream_matches_batch_and_replay() {
    let (_report, tele) = fig12::run_with_telemetry(false, 42, 4, 2);
    let d = fig12::run_detection(&tele);

    assert_eq!(
        d.streamed, d.batch,
        "live stream must match the matrix scan"
    );
    assert_eq!(
        d.replayed, d.streamed,
        "CSV replay must match the live feed"
    );
    assert_eq!(d.streamed_log_csv, d.batch_log_csv, "event logs must agree");
    assert_eq!(d.replayed_log_csv, d.streamed_log_csv);
    assert!(!d.events_csv.is_empty(), "the capture must record traffic");

    // The recorded stream is losslessly transportable on its own.
    let events: Vec<TelemetryEvent> = parse_csv_document(&d.events_csv).expect("lossless CSV");
    assert_eq!(to_csv_document(&events), d.events_csv);
}

/// Hybrid EP-imbalance traffic: streamed detectors equal the batch study,
/// and a CSV replay of the recorded load stream reproduces every verdict
/// bit-for-bit.
#[test]
fn hybrid_ep_stream_matches_batch_and_replays_bitwise() {
    let cfg = EpImbalanceConfig {
        seed: 2,
        nodes: 32,
        rotate_steps: 10,
        pinned_steps: 6,
        window: 8,
        factor: 2.0,
        hot_factor: 4.0,
    };
    let r = run_ep_imbalance(&cfg);

    // Stream == batch, field for field (the scenario computes both).
    assert_eq!(r.streamed_raw_false_positives, r.raw_false_positives);
    assert_eq!(
        r.streamed_smoothed_false_positives,
        r.smoothed_false_positives
    );
    assert_eq!(r.streamed_detect_step, r.smoothed_detect_step);
    assert_eq!(r.streamed_detected_rank, r.detected_rank);

    // Replay: CSV round trip the load stream and re-run both detectors.
    let doc = to_csv_document(&r.load_events);
    let replayed: Vec<TelemetryEvent> = parse_csv_document(&doc).expect("lossless CSV");
    assert_eq!(replayed, r.load_events, "load stream survives transport");

    let ep = 1 + r
        .load_events
        .iter()
        .map(|e| match e {
            TelemetryEvent::Load(l) => l.rank as usize,
            other => panic!("EP stream carries only load samples, got {other:?}"),
        })
        .max()
        .expect("non-empty stream");
    let bits = |verdicts: &[StepVerdict]| -> Vec<(u64, Option<(usize, u64)>)> {
        verdicts
            .iter()
            .map(|v| {
                (
                    v.step,
                    v.verdict.map(|(rank, ratio)| (rank, ratio.to_bits())),
                )
            })
            .collect()
    };
    let (live_raw, live_smooth) = stream_ep_verdicts(&r.load_events, ep, &cfg);
    let (replay_raw, replay_smooth) = stream_ep_verdicts(&replayed, ep, &cfg);
    assert_eq!(bits(&replay_raw), bits(&live_raw), "raw verdicts bitwise");
    assert_eq!(
        bits(&replay_smooth),
        bits(&live_smooth),
        "smoothed verdicts bitwise"
    );
}
