//! Integration: C4P invariants across the netsim/topology/collectives
//! boundary — the properties §III-B promises.

use c4::prelude::*;

fn grouped_topo() -> Topology {
    Topology::build(&ClosConfig::testbed_128_grouped(2).trunked())
}

fn cross_group_key(topo: &Topology, job: u64, rail: usize, qp: u16) -> FlowKey {
    FlowKey {
        src_gpu: topo.gpu_at(NodeId::from_index(job as usize % 8), rail),
        dst_gpu: topo.gpu_at(NodeId::from_index(8 + job as usize % 8), rail),
        comm: job,
        channel: 0,
        qp,
        incarnation: 0,
    }
}

#[test]
fn c4p_never_crosses_bonded_port_sides() {
    // The paper: "the master ensures traffic from the same NIC is balanced
    // between left and right ports by forbidding the paths from left ports
    // to right, and vice versa".
    let topo = grouped_topo();
    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    for job in 0..32u64 {
        for rail in 0..8 {
            for qp in 0..2u16 {
                let choice = master.select(&topo, &cross_group_key(&topo, job, rail, qp));
                assert_eq!(choice.src_side, choice.dst_side, "L↔L / R↔R only");
            }
        }
    }
}

#[test]
fn c4p_spreads_connections_across_all_spines() {
    let topo = grouped_topo();
    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    let mut per_spine: std::collections::HashMap<SwitchId, u32> = Default::default();
    for job in 0..16u64 {
        for rail in 0..8 {
            for qp in 0..2u16 {
                if let Some(p) = master
                    .select(&topo, &cross_group_key(&topo, job, rail, qp))
                    .fabric
                {
                    *per_spine.entry(p.spine).or_insert(0) += 1;
                }
            }
        }
    }
    assert_eq!(per_spine.len(), topo.num_spines(), "all spines used");
    let max = per_spine.values().max().unwrap();
    let min = per_spine.values().min().unwrap();
    assert!(
        max - min <= 1 + (max / 4),
        "near-even spine loads: {per_spine:?}"
    );
}

#[test]
fn probe_eliminates_degraded_links_that_ecmp_still_uses() {
    let mut topo = grouped_topo();
    let flaky = topo.fabric_up_links(0, 3)[0];
    topo.link_mut(flaky).set_degradation(0.5);

    // ECMP (routing) considers the link alive and keeps hashing onto it.
    let mut ecmp = EcmpSelector::new(5);
    let ecmp_uses_flaky = (0..64u64).any(|j| {
        (0..2u16).any(|qp| {
            ecmp.select(&topo, &cross_group_key(&topo, j, 0, qp))
                .fabric
                .is_some_and(|p| p.up == flaky)
        })
    });
    assert!(ecmp_uses_flaky, "baseline routing cannot see degradation");

    // C4P's prober eliminates it.
    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    assert!(master.catalog().eliminated_links().contains(&flaky));
    for j in 0..64u64 {
        for qp in 0..2u16 {
            let c = master.select(&topo, &cross_group_key(&topo, j, 0, qp));
            assert!(c.fabric.is_none_or(|p| p.up != flaky));
        }
    }
}

#[test]
fn rebalance_moves_allocations_off_dead_spine_and_stays_even() {
    let mut topo = grouped_topo();
    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    let keys: Vec<FlowKey> = (0..16u64)
        .flat_map(|j| (0..2u16).map(move |qp| (j, qp)))
        .map(|(j, qp)| cross_group_key(&topo, j, 0, qp))
        .collect();
    for k in &keys {
        master.select(&topo, k);
    }
    let dead = topo.spines()[2];
    topo.set_spine_up(dead, false);
    master.rebalance(&topo);
    let mut per_spine: std::collections::HashMap<SwitchId, u32> = Default::default();
    for k in &keys {
        let p = master.select(&topo, k).fabric.expect("cross-group");
        assert_ne!(p.spine, dead);
        *per_spine.entry(p.spine).or_insert(0) += 1;
    }
    assert_eq!(per_spine.len(), topo.num_spines() - 1);
    let max = per_spine.values().max().unwrap();
    let min = per_spine.values().min().unwrap();
    assert!(max - min <= 2, "even over survivors: {per_spine:?}");
}

#[test]
fn dynamic_byte_split_equalizes_qp_finish_times() {
    // One stream's two QPs on asymmetric paths: the EMA weights shift bytes
    // toward the faster QP until the edge completes as fast as possible.
    let mut topo = Topology::build(&ClosConfig::testbed_128().trunked());
    let comm = Communicator::new(
        1,
        (0..2)
            .flat_map(|n| topo.node(NodeId::from_index(n)).gpus.clone())
            .collect(),
        &topo,
    )
    .unwrap();
    // Degrade rail 0's right port to half speed: QP1 runs at 100 Gbps.
    let g = topo.gpu_at(NodeId::from_index(1), 0);
    let p = topo.port_of_gpu(g, PortSide::Right);
    topo.link_mut(topo.port(p).host_down).set_degradation(0.5);

    let mut master = C4pMaster::new(&topo, C4pConfig::default());
    let mut rng = DetRng::seed_from(10);
    let mut durations = Vec::new();
    for seq in 0..6u64 {
        // No explicit weight function: the engine borrows the weights off
        // the master's rate EMA via `PathSelector::byte_split_weight`.
        let req = CollectiveRequest {
            comm: &comm,
            seq,
            kind: CollKind::AllReduce,
            dtype: DataType::Bf16,
            count: 256 * 1024 * 1024,
            config: CommConfig::default(),
            start: SimTime::ZERO,
            rank_ready: None,
            drain: DrainConfig::default(),
        };
        let res = run_collective(&topo, &req, &mut master, None, &mut rng, None);
        master.observe(&res.qp_outcomes);
        durations.push(res.duration().expect("completes").as_secs_f64());
    }
    assert!(
        durations.last().unwrap() < &(durations[0] * 0.85),
        "re-splitting should shorten the sync: {durations:?}"
    );
}

#[test]
fn incarnation_bump_rehashes_ecmp_placement() {
    let topo = grouped_topo();
    let mut ecmp = EcmpSelector::new(3);
    let mut k = cross_group_key(&topo, 1, 0, 0);
    let before = ecmp.select(&topo, &k);
    let mut changed = false;
    for inc in 1..12 {
        k.incarnation = inc;
        if ecmp.select(&topo, &k) != before {
            changed = true;
            break;
        }
    }
    assert!(changed, "restart must be able to change ECMP placement");
}
