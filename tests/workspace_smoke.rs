//! Workspace smoke test: the `c4::prelude` facade exposes the core entry
//! points, and a minimal end-to-end scenario (small Clos topology + one
//! allreduce + one injected fault) runs deterministically under a fixed
//! RNG seed.

use c4::prelude::*;

/// A 1-MiB BF16 ring allreduce request over `comm`.
fn small_allreduce<'a>(comm: &'a Communicator) -> CollectiveRequest<'a> {
    CollectiveRequest {
        comm,
        seq: 0,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 512 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig::default(),
    }
}

/// The umbrella crate re-exports the facade: `c4_workspace::prelude` and
/// `c4::prelude` must name the same types.
#[test]
fn umbrella_reexports_facade() {
    let _t: c4_workspace::prelude::SimTime = SimTime::ZERO;
    let _d: c4_workspace::prelude::SimDuration = SimDuration::from_secs(1);
    // Scenario modules ride along on the umbrella too.
    let rows = c4_workspace::scenarios::fig3::run(42, 2);
    assert!(!rows.is_empty());
}

/// Every layer's primary entry point is reachable through the prelude.
#[test]
fn prelude_exposes_core_entry_points() {
    // simcore: time, RNG, stats.
    let mut rng = DetRng::seed_from(1);
    let _ = rng.uniform();
    let mut stats = StreamingStats::new();
    stats.add(1.0);
    assert_eq!(stats.count(), 1);

    // topology: Clos construction and path queries.
    let topo = Topology::build(&ClosConfig::tiny(2));
    assert!(topo.num_gpus() > 0);
    assert!(topo.num_links() > 0);

    // netsim: max-min solver and the two bundled selectors.
    let rates = maxmin::solve(&[10.0], &[vec![0u32], vec![0u32]], None);
    assert_eq!(rates.len(), 2);
    let _ = EcmpSelector::new(1);
    let _ = RailLocalSelector::new();

    // collectives: communicator + plan construction.
    let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
    let comm = Communicator::new(1, devices, &topo).expect("valid communicator");
    let plan = RingPlan::build(&topo, &comm);
    assert!(!plan.intra_edges.is_empty() || !plan.boundaries.is_empty());

    // faults: calibrated rate presets.
    let _ = FaultInjector::new(FaultRates::june_2023(), 7);

    // c4d + telemetry: master, detector config, worker stores.
    let _ = C4dMaster::new(DetectorConfig::default());
    let _ = WorkerTelemetry::new(topo.gpus()[0].id);
    let _ = DelayMatrix::new(4);

    // c4p: traffic-engineering master implements PathSelector.
    let _: Box<dyn PathSelector> = Box::new(C4pMaster::new(&topo, C4pConfig::default()));

    // trainsim: workload presets.
    let _ = JobSpec::gpt22b_tp8_dp16();
}

/// One allreduce over a small Clos fabric completes, is deterministic under
/// a fixed seed, and an injected NIC fault strictly degrades its bandwidth.
#[test]
fn tiny_end_to_end_is_deterministic() {
    let run_once = |topo: &Topology| -> f64 {
        let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
        let comm = Communicator::new(1, devices, topo).expect("valid communicator");
        let req = small_allreduce(&comm);
        let mut selector = EcmpSelector::new(1);
        let mut rng = DetRng::seed_from(42);
        let result = run_collective(topo, &req, &mut selector, None, &mut rng, None);
        assert!(!result.hung(), "clean fabric must not hang");
        result.busbw_gbps().expect("collective completes")
    };

    let topo = Topology::build(&ClosConfig::tiny(2));
    let first = run_once(&topo);
    let second = run_once(&topo);
    assert!(first > 0.0, "bus bandwidth must be positive, got {first}");
    assert_eq!(
        first.to_bits(),
        second.to_bits(),
        "same seed must reproduce bit-identical bandwidth ({first} vs {second})"
    );

    // Inject one fault: node 0's sender side drops to a quarter of its
    // capacity. (A fully dead port would *hang* the ECMP baseline — it
    // cannot steer around the blackhole, which is the paper's point — so a
    // degradation keeps the collective completing while strictly costing
    // bandwidth.)
    let mut faulty = Topology::build(&ClosConfig::tiny(2));
    Degradation::node_tx_slow(NodeId::from_index(0), 0.25).apply(&mut faulty);
    let degraded = run_once(&faulty);
    assert!(
        degraded < first,
        "slow-Tx node must reduce busbw (clean {first} vs degraded {degraded})"
    );

    // Fault schedules are deterministic under a fixed seed too.
    let horizon = SimDuration::from_hours(24);
    let mut inj_a = FaultInjector::new(FaultRates::june_2023(), 42);
    let mut inj_b = FaultInjector::new(FaultRates::june_2023(), 42);
    let ev_a = inj_a.schedule_crashes(16, 2, 8, SimTime::ZERO, horizon);
    let ev_b = inj_b.schedule_crashes(16, 2, 8, SimTime::ZERO, horizon);
    assert_eq!(ev_a.len(), ev_b.len());
    for (a, b) in ev_a.iter().zip(&ev_b) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.kind, b.kind);
    }
}
