//! Workspace smoke test: the `c4::prelude` facade exposes the core entry
//! points, and a minimal end-to-end scenario (small Clos topology + one
//! allreduce + one injected fault) runs deterministically under a fixed
//! RNG seed.

use c4::prelude::*;

/// A 1-MiB BF16 ring allreduce request over `comm`.
fn small_allreduce<'a>(comm: &'a Communicator) -> CollectiveRequest<'a> {
    CollectiveRequest {
        comm,
        seq: 0,
        kind: CollKind::AllReduce,
        dtype: DataType::Bf16,
        count: 512 * 1024,
        config: CommConfig::default(),
        start: SimTime::ZERO,
        rank_ready: None,
        drain: DrainConfig::default(),
    }
}

/// The umbrella crate re-exports the facade: `c4_workspace::prelude` and
/// `c4::prelude` must name the same types.
#[test]
fn umbrella_reexports_facade() {
    let _t: c4_workspace::prelude::SimTime = SimTime::ZERO;
    let _d: c4_workspace::prelude::SimDuration = SimDuration::from_secs(1);
    // Scenario modules ride along on the umbrella too.
    let rows = c4_workspace::scenarios::fig3::run(42, 2);
    assert!(!rows.is_empty());
}

/// Every layer's primary entry point is reachable through the prelude.
#[test]
fn prelude_exposes_core_entry_points() {
    // simcore: time, RNG, stats.
    let mut rng = DetRng::seed_from(1);
    let _ = rng.uniform();
    let mut stats = StreamingStats::new();
    stats.add(1.0);
    assert_eq!(stats.count(), 1);

    // topology: Clos construction and path queries.
    let topo = Topology::build(&ClosConfig::tiny(2));
    assert!(topo.num_gpus() > 0);
    assert!(topo.num_links() > 0);

    // netsim: max-min solver and the two bundled selectors.
    let rates = maxmin::solve(&[10.0], &[vec![0u32], vec![0u32]], None);
    assert_eq!(rates.len(), 2);
    let _ = EcmpSelector::new(1);
    let _ = RailLocalSelector::new();

    // collectives: communicator + plan construction.
    let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
    let comm = Communicator::new(1, devices, &topo).expect("valid communicator");
    let plan = RingPlan::build(&topo, &comm);
    assert!(!plan.intra_edges.is_empty() || !plan.boundaries.is_empty());

    // faults: calibrated rate presets.
    let _ = FaultInjector::new(FaultRates::june_2023(), 7);

    // c4d + telemetry: master, detector config, worker stores.
    let _ = C4dMaster::new(DetectorConfig::default());
    let _ = WorkerTelemetry::new(topo.gpus()[0].id);
    let _ = DelayMatrix::new(4);

    // c4p: traffic-engineering master implements PathSelector.
    let _: Box<dyn PathSelector> = Box::new(C4pMaster::new(&topo, C4pConfig::default()));

    // trainsim: workload presets.
    let _ = JobSpec::gpt22b_tp8_dp16();
}

/// One allreduce over a small Clos fabric completes, is deterministic under
/// a fixed seed, and an injected NIC fault strictly degrades its bandwidth.
#[test]
fn tiny_end_to_end_is_deterministic() {
    let run_once = |topo: &Topology| -> f64 {
        let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
        let comm = Communicator::new(1, devices, topo).expect("valid communicator");
        let req = small_allreduce(&comm);
        let mut selector = EcmpSelector::new(1);
        let mut rng = DetRng::seed_from(42);
        let result = run_collective(topo, &req, &mut selector, None, &mut rng, None);
        assert!(!result.hung(), "clean fabric must not hang");
        result.busbw_gbps().expect("collective completes")
    };

    let topo = Topology::build(&ClosConfig::tiny(2));
    let first = run_once(&topo);
    let second = run_once(&topo);
    assert!(first > 0.0, "bus bandwidth must be positive, got {first}");
    assert_eq!(
        first.to_bits(),
        second.to_bits(),
        "same seed must reproduce bit-identical bandwidth ({first} vs {second})"
    );

    // Inject one fault: node 0's sender side drops to a quarter of its
    // capacity. (A fully dead port *hangs* the ECMP baseline — it cannot
    // steer around the blackhole, which is the paper's point; the
    // `dead_port_hangs_ecmp_and_c4d_diagnoses_it` scenario below covers
    // that end to end — so here a degradation keeps the collective
    // completing while strictly costing bandwidth.)
    let mut faulty = Topology::build(&ClosConfig::tiny(2));
    Degradation::node_tx_slow(NodeId::from_index(0), 0.25).apply(&mut faulty);
    let degraded = run_once(&faulty);
    assert!(
        degraded < first,
        "slow-Tx node must reduce busbw (clean {first} vs degraded {degraded})"
    );

    // Fault schedules are deterministic under a fixed seed too.
    let horizon = SimDuration::from_hours(24);
    let mut inj_a = FaultInjector::new(FaultRates::june_2023(), 42);
    let mut inj_b = FaultInjector::new(FaultRates::june_2023(), 42);
    let ev_a = inj_a.schedule_crashes(16, 2, 8, SimTime::ZERO, horizon);
    let ev_b = inj_b.schedule_crashes(16, 2, 8, SimTime::ZERO, horizon);
    assert_eq!(ev_a.len(), ev_b.len());
    for (a, b) in ev_a.iter().zip(&ev_b) {
        assert_eq!(a.time, b.time);
        assert_eq!(a.kind, b.kind);
    }
}

/// The blackhole scenario end to end: a dead NIC rail hangs the ECMP
/// baseline against its `DrainConfig::deadline` (ECMP cannot steer around
/// it — the paper's point), C4D's hang detector fires a critical
/// `CommHang`, localizes the victim node, and background RCA reaches the
/// transport-level verdict (`AckTimeout`: the victim is silent in both
/// directions at the RDMA layer).
#[test]
fn dead_port_hangs_ecmp_and_c4d_diagnoses_it() {
    let mut topo = Topology::build(&ClosConfig::tiny(2));
    let devices: Vec<GpuId> = topo.gpus().iter().map(|g| g.id).collect();
    let comm = Communicator::new(1, devices, &topo).expect("valid communicator");
    let mut telemetry: Vec<WorkerTelemetry> = topo
        .gpus()
        .iter()
        .map(|g| WorkerTelemetry::new(g.id))
        .collect();
    let mut selector = EcmpSelector::new(42);
    let mut rng = DetRng::seed_from(7);

    // One healthy iteration establishes transport history (the completions
    // whose later silence localizes the victim).
    let mut req = small_allreduce(&comm);
    let healthy = run_collective(
        &topo,
        &req,
        &mut selector,
        None,
        &mut rng,
        Some(&mut telemetry),
    );
    assert!(!healthy.hung(), "clean fabric must not hang");
    let healthy_end = healthy.finished.expect("completed");

    // Kill both ports of node 0's rail-0 GPU: its boundary streams have
    // nowhere to go, and ECMP keeps hashing onto the blackhole.
    let victim_gpu = topo.gpu_at(NodeId::from_index(0), 0);
    let victim_node = topo.gpu(victim_gpu).node;
    for side in PortSide::BOTH {
        Degradation::nic_half_down(topo.port_of_gpu(victim_gpu, side)).apply(&mut topo);
    }

    // The deadline bounds simulated time: the drain gives up on the
    // blackholed flows no later than the configured horizon (and, with no
    // rate noise that could unstick anything, reports the stall as soon as
    // every movable flow has finished). A 128 MiB message makes the healthy
    // rail's drain run for milliseconds, so the victim's transport silence
    // stands clear of ordinary inter-completion jitter for RCA.
    req.seq = 1;
    req.count = 64 * 1024 * 1024;
    req.start = healthy_end;
    let deadline = healthy_end + SimDuration::from_secs(30);
    req.drain.deadline = Some(deadline);
    let hung = run_collective(
        &topo,
        &req,
        &mut selector,
        None,
        &mut rng,
        Some(&mut telemetry),
    );
    assert!(hung.hung(), "dead rail must hang the ECMP baseline");
    assert!(
        hung.report.end <= deadline,
        "hang is bounded by the deadline"
    );
    let stalled = hung.report.stalled();
    assert!(
        !stalled.is_empty(),
        "the blackholed flows are reported stalled"
    );
    // Exactly the victim's rail stalls: every stalled flow has the victim
    // GPU as one endpoint; the healthy rail and NVLink edges completed.
    for f in &stalled {
        let o = &hung.report.outcomes[*f];
        assert!(
            o.key.src_gpu == victim_gpu || o.key.dst_gpu == victim_gpu,
            "stalled flow {f} does not touch the victim"
        );
    }
    assert!(stalled.len() < hung.report.outcomes.len());

    // C4D: scan the communicator's telemetry after the hang timeout.
    let at = deadline + SimDuration::from_secs(30);
    let rec = CommRecord {
        comm: comm.id(),
        devices: comm.devices().to_vec(),
        created: SimTime::ZERO,
    };
    let snapshots: Vec<TelemetrySnapshot> = comm
        .devices()
        .iter()
        .map(|g| telemetry[g.index()].snapshot(at))
        .collect();
    let mut master = C4dMaster::new(DetectorConfig::default());
    let diags = master.scan(at, &topo, &rec, &snapshots);
    let hang = diags
        .iter()
        .find(|d| matches!(d.syndrome, Syndrome::CommHang { .. }))
        .expect("hang detector fires");
    assert!(hang.critical, "a communication hang is always critical");
    assert_eq!(
        hang.suspect,
        Some(victim_node),
        "localizes the dead rail's node"
    );
    assert_eq!(
        master.log().of_kind(EventKind::CommHang).count(),
        1,
        "one CommHang event in the log"
    );

    // Background RCA: silent in both directions at the transport layer →
    // the ACK-timeout (NIC/transport) verdict, not a host-side cause.
    let rca = analyze_root_cause(&rec, &snapshots, &hang.syndrome);
    assert_eq!(rca.probable_cause(), FaultKind::AckTimeout, "{rca:?}");
}
