//! Offline stand-in for `criterion`.
//!
//! Implements the small API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple wall-clock measurement loop: warm up briefly, then run batches
//! until a time budget is spent and report the median per-iteration time.
//! Numbers are indicative, not publication-grade statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline && self.samples.len() < 1000 {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget,
    };
    f(&mut b);
    let n = b.samples.len();
    println!("{label:<48} median {:>12.3?}  ({n} samples)", b.median());
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.budget, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Throughput annotation (accepted and ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            name: name.into(),
            budget,
            _parent: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.budget, &mut f);
        self
    }
}

/// Declares a group of benchmark functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
