//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! numeric-range and [`prop::collection::vec`] strategies, and the
//! `prop_assert*` / `prop_assume!` macros. Inputs are sampled
//! deterministically from a per-test seed and each test body runs
//! [`ProptestConfig::cases`] times. There is no shrinking: a failing case
//! panics with the plain `assert!` message.

pub mod strategy {
    //! Strategy trait, built-in strategies and run configuration.

    use std::ops::Range;

    /// Deterministic sampling source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a source from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Returns the next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run configuration; only `cases` is honored by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases each test body runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` iterations per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A generator of test inputs.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// Strategy yielding `Vec`s of an element strategy with a length drawn
    /// from a range. Built by [`crate::prop::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror of proptest's `prop` module.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Strategy producing vectors of `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests (mirrors `proptest::prelude`).

    pub use crate::prop;
    pub use crate::strategy::{ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Property-test entry macro: expands each `fn name(arg in strategy, ..)`
/// into a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::strategy::ProptestConfig = $config;
                let mut rng =
                    $crate::strategy::TestRng::new($crate::fnv1a(stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    // Each case runs in a closure so `prop_assume!` can
                    // reject the whole case with `return`, matching real
                    // proptest's semantics even inside nested loops.
                    (|| { $body })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::strategy::ProptestConfig::default()) $($rest)*
        }
    };
}

/// `assert!` that reports through proptest's macro name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through proptest's macro name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through proptest's macro name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current sampled case when its precondition fails. Expands to a
/// `return` from the per-case closure [`proptest!`] wraps around each body,
/// so the rejection covers the whole case regardless of nesting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
