//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of rand 0.8's API used by this workspace: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and an [`rngs::StdRng`]
//! implementation. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic and high-quality, but *not* bit-compatible with the real
//! `StdRng` (ChaCha12).

/// Error type returned by [`RngCore::try_fill_bytes`]. Never produced by the
/// stub generators; exists for signature compatibility.
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("rand stub error (infallible in practice)")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation trait (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`]; the stub never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable generators (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly "at standard" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's multiply-shift: uniform enough for simulation use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
