//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` in both the trait namespace (marker
//! traits with blanket impls, so generic bounds compile) and the macro
//! namespace (no-op derives from the stub `serde_derive`). No data format is
//! provided; the workspace uses the derives purely as schema annotations.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types. The lifetime parameter mirrors the real trait's signature.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
