//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as schema
//! annotations; nothing serializes at runtime (the stub `serde` crate
//! provides blanket trait impls). These derives therefore emit no code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
